"""Replication-aware recovery: killed ranks must not change the physics.

Each schedule kills exactly one rank inside the recoverable window (the
shift loop, before the failure-sync point).  The invariant under test is
the strongest one available: the recovered forces are **bitwise identical**
to the fault-free run — recovery replays the victim's updates in the same
order and folds the degraded reduction with the same associativity as the
fault-free tree, so not even the last ulp may move.

Rank roles at p=8, c=2 ("rows" layout, 4 teams): ranks 0-3 are team
leaders (row 0), ranks 4-7 are their replicas (row 1); rank 7 executes the
final shift of the ring schedule.
"""

import numpy as np
import pytest

from repro.core import (
    SimulationConfig,
    allpairs_config,
    run_allpairs,
    run_cutoff,
    run_simulation,
    team_blocks_even,
)
from repro.machines import GenericMachine
from repro.physics import ParticleSet, reference_forces
from repro.simmpi import DeadlockError, FaultSchedule, KillRank

from tests.conftest import assert_forces_close

pytestmark = pytest.mark.faults

_P, _C = 8, 2

#: (role, victim rank) — one per structural role in the step.
_ROLES = [
    ("leader", 2),          # row 0: owns its team's home block
    ("first-leader", 0),    # row 0, team 0: also the reduce root's team
    ("non-leader", 5),      # row 1: pure replica
    ("last-shifter", 7),    # row 1, last team: runs the final ring shift
]


def _kill(victim: int, after_ops: int = 6) -> FaultSchedule:
    return FaultSchedule(events=(KillRank(victim, after_ops=after_ops),))


class TestAllPairsRecovery:
    @pytest.mark.parametrize("role,victim", _ROLES)
    def test_single_death_is_bitwise_invisible(self, role, victim, law,
                                               particles_2d):
        machine = GenericMachine(nranks=_P)
        clean = run_allpairs(machine, particles_2d, _C, law=law)
        faulty = run_allpairs(machine, particles_2d, _C, law=law,
                              faults=_kill(victim))
        assert list(faulty.run.deaths) == [victim], \
            f"{role} kill schedule did not fire"
        assert np.array_equal(faulty.ids, clean.ids)
        assert np.array_equal(faulty.forces, clean.forces), \
            f"recovery after killing the {role} (rank {victim}) moved a bit"

    @pytest.mark.parametrize("victim", range(_P))
    def test_every_rank_recoverable_in_window(self, law, particles_2d,
                                              victim):
        machine = GenericMachine(nranks=_P)
        clean = run_allpairs(machine, particles_2d, _C, law=law)
        faulty = run_allpairs(machine, particles_2d, _C, law=law,
                              faults=_kill(victim))
        assert list(faulty.run.deaths) == [victim]
        assert np.array_equal(faulty.forces, clean.forces)

    def test_recovered_forces_match_reference(self, law, particles_2d):
        ref = reference_forces(law, particles_2d)
        out = run_allpairs(GenericMachine(nranks=_P), particles_2d, _C,
                           law=law, faults=_kill(5))
        assert_forces_close(out.forces, ref)

    def test_exactly_once_survives_a_death(self, law, particles_2d):
        from repro.physics import reference_pair_matrix

        n = len(particles_2d)
        counter = np.zeros((n, n), dtype=np.int64)
        run_allpairs(GenericMachine(nranks=_P), particles_2d, _C, law=law,
                     pair_counter=counter, faults=_kill(5))
        # Recovery recomputes lost updates, so surviving ranks' pair counts
        # stay exactly-once; the victim's own pre-death scans plus the
        # replay may double-count, but never *miss*, a pair.
        assert (counter >= reference_pair_matrix(law, particles_2d)).all()

    def test_kill_with_c1_rejected(self, law, particles_2d):
        with pytest.raises(ValueError):
            run_allpairs(GenericMachine(nranks=4), particles_2d, 1, law=law,
                         faults=_kill(1))


class TestCutoffRecovery:
    def test_single_death_is_bitwise_invisible(self, law, particles_2d):
        machine = GenericMachine(nranks=_P)
        kw = dict(rcut=0.4, box_length=1.0, dim=1, law=law)
        clean = run_cutoff(machine, particles_2d, _C, **kw)
        faulty = run_cutoff(machine, particles_2d, _C, **kw,
                            faults=_kill(5))
        assert list(faulty.run.deaths) == [5]
        assert np.array_equal(faulty.forces, clean.forces)
        assert_forces_close(faulty.forces,
                            reference_forces(law.with_rcut(0.4),
                                             particles_2d))


class TestDriverRecovery:
    def _scfg(self, law, nsteps=3):
        return SimulationConfig(cfg=allpairs_config(_P, _C), law=law,
                                dt=1e-3, nsteps=nsteps, box_length=1.0)

    @pytest.mark.parametrize("victim,after_ops", [(6, 20), (2, 20), (1, 20)])
    def test_multistep_death_is_bitwise_invisible(self, law, victim,
                                                  after_ops):
        ps = ParticleSet.uniform_random(64, 2, 1.0, max_speed=0.05, seed=9)
        blocks = team_blocks_even(ps, _P // _C)
        machine = GenericMachine(nranks=_P)
        scfg = self._scfg(law)
        clean = run_simulation(machine, scfg, blocks)
        sched = FaultSchedule(events=(KillRank(victim, after_ops=after_ops),))
        faulty = run_simulation(machine, scfg, blocks, faults=sched)
        assert list(faulty.run.deaths) == [victim]
        assert np.array_equal(faulty.particles.pos, clean.particles.pos)
        assert np.array_equal(faulty.particles.vel, clean.particles.vel)
        assert np.array_equal(faulty.forces, clean.forces)

    def test_dead_rank_replayed_every_remaining_step(self, law):
        ps = ParticleSet.uniform_random(64, 2, 1.0, max_speed=0.05, seed=9)
        blocks = team_blocks_even(ps, _P // _C)
        scfg = self._scfg(law, nsteps=3)
        sched = FaultSchedule(events=(KillRank(6, after_ops=5),))
        res = run_simulation(GenericMachine(nranks=_P), scfg, blocks,
                             faults=sched)
        # Death in step 1 -> the victim's work is replayed in all 3 steps.
        assert len(res.recovered) == 3
        assert all(ev.rank == 6 for ev in res.recovered)
        assert all(ev.replayed_updates > 0 for ev in res.recovered)
        assert all(ev.recovered_by != 6 for ev in res.recovered)

    def test_verlet_with_faults_rejected(self, law):
        ps = ParticleSet.uniform_random(32, 2, 1.0, seed=1)
        blocks = team_blocks_even(ps, _P // _C)
        scfg = SimulationConfig(cfg=allpairs_config(_P, _C), law=law,
                                dt=1e-3, nsteps=2, box_length=1.0,
                                integrator="verlet")
        with pytest.raises(ValueError):
            run_simulation(GenericMachine(nranks=_P), scfg, blocks,
                           faults=_kill(5))

    def test_sampling_with_faults_rejected(self, law):
        ps = ParticleSet.uniform_random(32, 2, 1.0, seed=1)
        blocks = team_blocks_even(ps, _P // _C)
        with pytest.raises(ValueError):
            run_simulation(GenericMachine(nranks=_P), self._scfg(law),
                           blocks, faults=_kill(5), sample_every=1)


class TestInterleavedHoleRebuild:
    """Regression: at p=16 the tombstone bubble interleaves with live
    buffers, leaving mid-schedule holes (e.g. holes=[2] of updates
    [0,1,2,3]).  Appending the missed update would permute the float
    summation by one ulp; recovery must rebuild such slots in full
    schedule order instead.  Found by the chaos soak harness
    (seed=0, trial 2)."""

    def test_early_death_at_p16_is_bitwise_invisible(self, law):
        ps = ParticleSet.uniform_random(53, 1, 1.0, max_speed=0.05, seed=7)
        machine = GenericMachine(nranks=16)
        clean = run_allpairs(machine, ps, 2, law=law)
        faulty = run_allpairs(machine, ps, 2, law=law,
                              faults=_kill(10, after_ops=2))
        assert list(faulty.run.deaths) == [10]
        assert np.array_equal(faulty.forces, clean.forces), \
            "interleaved-hole replay permuted a float summation"

    @pytest.mark.parametrize("victim,after_ops", [(8, 2), (12, 6), (15, 2)])
    def test_other_early_victims(self, law, victim, after_ops):
        ps = ParticleSet.uniform_random(53, 1, 1.0, max_speed=0.05, seed=7)
        machine = GenericMachine(nranks=16)
        clean = run_allpairs(machine, ps, 2, law=law)
        faulty = run_allpairs(machine, ps, 2, law=law,
                              faults=_kill(victim, after_ops=after_ops))
        assert list(faulty.run.deaths) == [victim]
        assert np.array_equal(faulty.forces, clean.forces)

    @pytest.mark.parametrize("schedule", ["random:1", "random:2", "random:3",
                                          "random:4", "random:5",
                                          "adversarial"])
    def test_one_ulp_clean_under_perturbed_schedules(self, law, schedule):
        """The hole-rebuild must stay exact whatever interleaving produced
        the holes: the perturbed scheduler shifts which updates are already
        buffered when the victim dies, so the rebuild sees *different*
        mid-schedule hole patterns — and must still replay in full schedule
        order, never by appending."""
        ps = ParticleSet.uniform_random(53, 1, 1.0, max_speed=0.05, seed=7)
        machine = GenericMachine(nranks=16)
        clean = run_allpairs(machine, ps, 2, law=law)
        faulty = run_allpairs(machine, ps, 2, law=law,
                              faults=_kill(10, after_ops=2),
                              engine_opts={"schedule": schedule})
        assert list(faulty.run.deaths) == [10]
        assert np.array_equal(faulty.forces, clean.forces), \
            (f"interleaved-hole replay permuted a float summation under "
             f"schedule {schedule!r}")


class TestCutoffDriverRecovery:
    """Multi-step spatial-cutoff runs with kills: the c-fold replication
    absorbs the death and the trajectory must not move a bit."""

    def _sim(self, law, nsteps=3):
        from repro.core import cutoff_config, team_blocks_spatial

        ps = ParticleSet.uniform_random(64, 2, 1.0, max_speed=0.05, seed=9)
        cfg = cutoff_config(_P, _C, rcut=0.4, box_length=1.0, dim=2)
        blocks = team_blocks_spatial(ps, cfg.geometry)
        scfg = SimulationConfig(cfg=cfg, law=law, dt=5e-4, nsteps=nsteps,
                                box_length=1.0)
        return GenericMachine(nranks=_P), scfg, blocks

    @pytest.mark.parametrize("role,victim", [("leader", 2),
                                             ("first-leader", 0),
                                             ("replica", 5),
                                             ("last-replica", 7)])
    def test_single_death_is_bitwise_invisible(self, law, role, victim):
        machine, scfg, blocks = self._sim(law)
        clean = run_simulation(machine, scfg, blocks)
        faulty = run_simulation(machine, scfg, blocks,
                                faults=_kill(victim, after_ops=40))
        assert list(faulty.run.deaths) == [victim], \
            f"{role} kill schedule did not fire"
        assert np.array_equal(faulty.particles.pos, clean.particles.pos)
        assert np.array_equal(faulty.particles.vel, clean.particles.vel)
        assert np.array_equal(faulty.forces, clean.forces), \
            f"cutoff recovery after killing the {role} (rank {victim}) " \
            "moved a bit"

    def test_multi_team_deaths_recovered(self, law):
        machine, scfg, blocks = self._sim(law)
        clean = run_simulation(machine, scfg, blocks)
        sched = FaultSchedule(events=(KillRank(4, after_ops=40),
                                      KillRank(6, after_ops=35)))
        faulty = run_simulation(machine, scfg, blocks, faults=sched)
        assert sorted(faulty.run.deaths) == [4, 6]
        assert np.array_equal(faulty.forces, clean.forces)

    def test_whole_team_kill_rejected_upfront(self, law):
        # Ranks 1 and 5 are rows 0 and 1 of the same team: killing both
        # leaves no survivor, and the grid-aware precheck refuses the
        # schedule before any rank runs.
        machine, scfg, blocks = self._sim(law)
        sched = FaultSchedule(events=(KillRank(1, after_ops=10),
                                      KillRank(5, after_ops=20)))
        with pytest.raises(ValueError, match="every member of team"):
            run_simulation(machine, scfg, blocks, faults=sched)

    def test_partial_team_overlap_allowed(self, law):
        # Two kills in *different* teams pass the same precheck.
        from repro.core.ca_step import check_fault_replication

        machine, scfg, _ = self._sim(law)
        sched = FaultSchedule(events=(KillRank(1, after_ops=10),
                                      KillRank(6, after_ops=20)))
        check_fault_replication(sched, _C, grid=scfg.cfg.grid)


class TestDeadlockReporting:
    def test_blocked_names_every_hung_rank(self):
        from repro.simmpi import Engine

        def program(comm):
            if comm.rank == 0:
                return "done"
            # 1 <- 2 <- 3 <- 0, but rank 0 never sends: all three hang.
            got = yield from comm.recv((comm.rank + 1) % comm.size)
            return got

        with pytest.raises(DeadlockError) as ei:
            Engine(GenericMachine(nranks=4)).run(program)
        assert set(ei.value.blocked) == {1, 2, 3}
        for rank, why in ei.value.blocked.items():
            assert "recv" in why
            assert f"peer={(rank + 1) % 4}" in why

"""Weighted (equal-count) team decomposition — the load-balance extension.

The paper keeps its particle distribution "nearly uniform over time" so
equal cells stay balanced; this extension places cell boundaries at
particle quantiles instead, re-balancing clustered workloads while the CA
algorithm stays exactly correct.
"""

import numpy as np
import pytest

from repro.core import cutoff_config, run_cutoff
from repro.machines import GenericMachine, InstantMachine
from repro.physics import (
    ForceLaw,
    ParticleSet,
    TeamGeometry,
    density_gradient,
    reference_forces,
    reference_pair_matrix,
    team_of_positions,
    two_phase,
    weighted_geometry,
)

from tests.conftest import assert_forces_close


@pytest.fixture
def clustered():
    return two_phase(400, 1, 1.0, dense_fraction=0.85, dense_extent=0.2,
                     seed=0)


class TestWeightedGeometry:
    def test_equal_counts_1d(self, clustered):
        g = weighted_geometry(clustered, (16,), 1.0)
        counts = np.bincount(team_of_positions(clustered.pos, g),
                             minlength=16)
        assert counts.max() - counts.min() <= 1

    def test_equal_cells_are_unbalanced(self, clustered):
        g = TeamGeometry(1.0, (16,))
        counts = np.bincount(team_of_positions(clustered.pos, g),
                             minlength=16)
        assert counts.max() > 4 * counts.mean()

    def test_edges_span_box(self, clustered):
        g = weighted_geometry(clustered, (8,), 1.0)
        e = g.axis_edges(0)
        assert e[0] == 0.0 and e[-1] == pytest.approx(1.0)
        assert (np.diff(e) > 0).all()

    def test_2d_marginal_balance(self):
        ps = density_gradient(1000, 2, 1.0, exponent=3.0, seed=1)
        g = weighted_geometry(ps, (4, 4), 1.0)
        counts = np.bincount(team_of_positions(ps.pos, g), minlength=16)
        eq = TeamGeometry(1.0, (4, 4))
        counts_eq = np.bincount(team_of_positions(ps.pos, eq), minlength=16)
        assert counts.max() < counts_eq.max()

    def test_region_bounds_from_edges(self, clustered):
        g = weighted_geometry(clustered, (4,), 1.0)
        for t in range(4):
            lo, hi = g.region_bounds(t)
            assert lo[0] == g.axis_edges(0)[t]
            assert hi[0] == g.axis_edges(0)[t + 1]

    def test_spanned_cells_worst_case(self):
        # Narrow cells near 0: a modest rcut spans many of them.
        edges = ((0.0, 0.01, 0.02, 0.03, 1.0),)
        g = TeamGeometry(1.0, (4,), edges=edges)
        assert g.spanned_cells(0.05)[0] >= 3
        eq = TeamGeometry(1.0, (4,))
        assert eq.spanned_cells(0.05) == (1,)

    def test_validation(self):
        with pytest.raises(ValueError):
            TeamGeometry(1.0, (2,), edges=((0.0, 0.5),))  # wrong length
        with pytest.raises(ValueError):
            TeamGeometry(1.0, (2,), edges=((0.0, 0.6, 0.5),))  # not increasing
        with pytest.raises(ValueError):
            TeamGeometry(1.0, (2,), periodic=True,
                         edges=((0.0, 0.5, 1.0),))  # periodic + weighted

    def test_cell_widths_guarded(self):
        g = TeamGeometry(1.0, (2,), edges=((0.0, 0.3, 1.0),))
        with pytest.raises(ValueError):
            g.cell_widths

    def test_degenerate_quantiles_separated(self):
        # Many particles at the same coordinate must not collapse edges.
        pos = np.full((50, 1), 0.5)
        ps = ParticleSet(pos, np.zeros((50, 1)), np.arange(50))
        g = weighted_geometry(ps, (4,), 1.0)
        e = g.axis_edges(0)
        assert (np.diff(e) > 0).all()


class TestWeightedCutoffRuns:
    @pytest.mark.parametrize("c", [1, 2, 4])
    def test_exact_physics(self, clustered, c, law):
        rcut = 0.1
        ref = reference_forces(law.with_rcut(rcut), clustered)
        g = weighted_geometry(clustered, (16 // c,), 1.0)
        counter = np.zeros((400, 400), dtype=np.int64)
        out = run_cutoff(InstantMachine(nranks=16), clustered, c, rcut=rcut,
                         box_length=1.0, law=law, geometry=g,
                         pair_counter=counter)
        expect = reference_pair_matrix(law.with_rcut(rcut), clustered)
        assert (counter == expect).all()
        assert_forces_close(out.forces, ref)

    def test_scan_imbalance_drops(self, clustered, law):
        rcut = 0.1
        eq = run_cutoff(InstantMachine(nranks=16), clustered, 1, rcut=rcut,
                        box_length=1.0, law=law)
        g = weighted_geometry(clustered, (16,), 1.0)
        wt = run_cutoff(InstantMachine(nranks=16), clustered, 1, rcut=rcut,
                        box_length=1.0, law=law, geometry=g)

        def imbalance(run):
            scans = [r.npairs for r in run.run.results]
            return max(scans) / (sum(scans) / len(scans))

        assert imbalance(wt) < imbalance(eq) / 2

    def test_faster_on_clustered_workload(self, clustered, law):
        """Balanced blocks shorten the simulated critical path."""
        m = GenericMachine(nranks=16)
        rcut = 0.1
        eq = run_cutoff(m, clustered, 1, rcut=rcut, box_length=1.0, law=law)
        g = weighted_geometry(clustered, (16,), 1.0)
        wt = run_cutoff(m, clustered, 1, rcut=rcut, box_length=1.0, law=law,
                        geometry=g)
        assert wt.run.elapsed < eq.run.elapsed

    def test_geometry_team_count_validated(self, clustered, law):
        g = weighted_geometry(clustered, (16,), 1.0)
        with pytest.raises(ValueError, match="teams"):
            cutoff_config(16, 2, rcut=0.1, box_length=1.0, geometry=g)

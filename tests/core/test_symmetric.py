"""The symmetric (Newton's-third-law) all-pairs extension.

The paper explicitly does not exploit force symmetry; this variant does.
It must (a) produce identical physics, (b) cover each ordered pair exactly
once while *evaluating* each unordered pair once, and (c) halve the total
computation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    half_ring_schedule,
    run_allpairs_virtual,
    run_symmetric,
    run_symmetric_virtual,
    symmetric_config,
)
from repro.machines import GenericMachine, GenericTorus, InstantMachine
from repro.physics import ForceLaw, ParticleSet, reference_forces

from tests.conftest import assert_forces_close

CONFIGS = [(1, 1), (2, 1), (4, 1), (4, 2), (8, 2), (8, 4), (12, 3),
           (16, 4), (9, 3), (6, 2)]


class TestHalfRingSchedule:
    @pytest.mark.parametrize("T,c", [(8, 1), (8, 2), (7, 1), (5, 1), (12, 4)])
    def test_validates(self, T, c):
        half_ring_schedule(T, c).validate()

    def test_window_is_half_ring(self):
        s = half_ring_schedule(8, 1)
        assert [o[0] for o, sk in zip(s.offsets, s.skip) if not sk] == [0, 1, 2, 3, 4]

    def test_half_the_steps_of_full_ring(self):
        from repro.core import all_pairs_schedule

        full = all_pairs_schedule(16, 2)
        half = half_ring_schedule(16, 2)
        assert half.steps < full.steps
        assert half.steps <= full.steps // 2 + 1

    def test_unordered_pair_coverage(self):
        """Every unordered team pair appears exactly once across columns
        (modulo the antipodal rule the algorithm applies at runtime)."""
        for T in (4, 5, 6, 7, 8):
            s = half_ring_schedule(T, 1)
            seen = {}
            for col in range(T):
                for u in range(s.window):
                    if s.skip[u]:
                        continue
                    o = s.offsets[u][0]
                    if o == 0:
                        continue
                    visitor = s.visitor_of(col, u)
                    if T % 2 == 0 and o == T // 2 and col >= visitor:
                        continue  # runtime antipodal rule
                    key = frozenset((col, visitor))
                    seen[key] = seen.get(key, 0) + 1
            expected = {frozenset((a, b)) for a in range(T) for b in range(T)
                        if a < b}
            assert set(seen) == expected
            assert all(v == 1 for v in seen.values())


class TestCorrectness:
    @pytest.mark.parametrize("p,c", CONFIGS)
    def test_forces_match_reference(self, p, c, law, particles_2d):
        ref = reference_forces(law, particles_2d)
        out = run_symmetric(GenericMachine(nranks=p), particles_2d, c, law=law)
        assert_forces_close(out.forces, ref)

    @pytest.mark.parametrize("p,c", CONFIGS)
    def test_every_ordered_pair_exactly_once(self, p, c, law):
        n = 48
        ps = ParticleSet.uniform_random(n, 2, 1.0, seed=55)
        counter = np.zeros((n, n), dtype=np.int64)
        run_symmetric(InstantMachine(nranks=p), ps, c, law=law,
                      pair_counter=counter)
        expect = np.ones((n, n), dtype=np.int64)
        np.fill_diagonal(expect, 0)
        assert (counter == expect).all()

    def test_matches_standard_algorithm(self, law, particles_2d):
        from repro.core import run_allpairs

        std = run_allpairs(GenericMachine(nranks=8), particles_2d, 2, law=law)
        sym = run_symmetric(GenericMachine(nranks=8), particles_2d, 2, law=law)
        assert_forces_close(sym.forces, std.forces)

    @settings(max_examples=10, deadline=None)
    @given(pc=st.sampled_from(CONFIGS), n=st.integers(10, 60),
           seed=st.integers(0, 500))
    def test_coverage_property(self, pc, n, seed):
        p, c = pc
        law = ForceLaw()
        ps = ParticleSet.uniform_random(n, 2, 1.0, seed=seed)
        counter = np.zeros((n, n), dtype=np.int64)
        run_symmetric(InstantMachine(nranks=p), ps, c, law=law,
                      pair_counter=counter)
        expect = np.ones((n, n), dtype=np.int64)
        np.fill_diagonal(expect, 0)
        assert (counter == expect).all()


class TestCosts:
    def test_total_scans_exactly_halved(self):
        p, n = 16, 1024
        m = GenericMachine(nranks=p)
        std = sum(r.npairs for r in run_allpairs_virtual(m, n, 2).results)
        sym = sum(r.npairs for r in run_symmetric_virtual(m, n, 2).results)
        # n^2 vs n(n-1)/2 + ... the pair total is (n^2 - n_self_diag)/2.
        assert std == n * n
        assert sym < std * 0.51
        assert sym > std * 0.45

    def test_fewer_shift_steps(self):
        m = GenericTorus(nranks=32, cores_per_node=4)
        std = run_allpairs_virtual(m, 2048, 2).report.max_messages("shift")
        sym = run_symmetric_virtual(m, 2048, 2).report.max_messages("shift")
        assert sym < std

    def test_return_phase_present_and_small(self):
        m = GenericTorus(nranks=16, cores_per_node=4)
        rep = run_symmetric_virtual(m, 2048, 2).report
        assert rep.max_messages("return") == 1
        assert rep.max_time("return") > 0

    def test_faster_in_compute_bound_regime(self):
        m = GenericTorus(nranks=16, cores_per_node=4, pair_time=1e-6,
                         alpha=1e-7, beta=1e-11)
        std = run_allpairs_virtual(m, 2048, 2).elapsed
        sym = run_symmetric_virtual(m, 2048, 2).elapsed
        assert sym < 0.75 * std

    def test_shift_bytes_carry_reactions(self):
        """Per-step messages are larger (positions + reactions) but the
        loop is about half as long."""
        m = GenericMachine(nranks=16)
        std = run_allpairs_virtual(m, 2048, 1).report
        sym = run_symmetric_virtual(m, 2048, 1).report
        per_msg_std = std.max_bytes("shift") / std.max_messages("shift")
        per_msg_sym = sym.max_bytes("shift") / sym.max_messages("shift")
        assert per_msg_sym > per_msg_std
        assert sym.max_bytes("shift") < std.max_bytes("shift")

"""Rank-layout ablation: 'rows' (the analyzed mapping) vs 'teams'.

Both layouts must compute identical physics; they differ only in which
communication becomes local.  With team members contiguous ('teams'), the
broadcast/reduce trees become intra-node while the shifts stretch — the
inverse of the trade-off the default mapping makes.
"""

import numpy as np
import pytest

from repro.core import run_allpairs, run_allpairs_virtual
from repro.machines import GenericMachine, GenericTorus
from repro.model import allpairs_breakdown
from repro.physics import ParticleSet, reference_forces
from repro.simmpi import ReplicatedGrid

from tests.conftest import assert_forces_close


class TestGridLayouts:
    def test_teams_layout_mapping(self):
        g = ReplicatedGrid(p=12, c=3, layout="teams")
        assert g.team_ranks(0) == [0, 1, 2]  # contiguous team
        assert g.team_ranks(1) == [3, 4, 5]
        assert g.row_ranks(0) == [0, 3, 6, 9]
        for r in range(12):
            assert g.rank_at(g.row_of(r), g.col_of(r)) == r

    def test_rows_layout_is_default(self):
        assert ReplicatedGrid(p=8, c=2).layout == "rows"

    def test_invalid_layout(self):
        with pytest.raises(ValueError):
            ReplicatedGrid(p=8, c=2, layout="diagonal")

    def test_layouts_partition_identically(self):
        for layout in ("rows", "teams"):
            g = ReplicatedGrid(p=24, c=4, layout=layout)
            seen = sorted(r for col in range(g.nteams) for r in g.team_ranks(col))
            assert seen == list(range(24))


class TestLayoutPhysics:
    @pytest.mark.parametrize("layout", ["rows", "teams"])
    @pytest.mark.parametrize("p,c", [(8, 2), (12, 3), (16, 4)])
    def test_forces_identical(self, layout, p, c, law, particles_2d):
        ref = reference_forces(law, particles_2d)
        out = run_allpairs(GenericMachine(nranks=p), particles_2d, c, law=law,
                           layout=layout)
        assert_forces_close(out.forces, ref)

    def test_layouts_agree_with_each_other(self, law):
        ps = ParticleSet.uniform_random(64, 2, 1.0, seed=71)
        m = GenericMachine(nranks=8)
        rows = run_allpairs(m, ps, 2, law=law, layout="rows")
        teams = run_allpairs(m, ps, 2, law=law, layout="teams")
        assert np.allclose(rows.forces, teams.forces)


class TestLayoutTradeoff:
    def test_teams_layout_cheapens_collectives(self):
        """Contiguous team members land on the same node: the bcast/reduce
        trees run over shared memory while the shifts stretch."""
        m = GenericTorus(nranks=64, cores_per_node=4)
        c = 4
        rows = run_allpairs_virtual(m, 8192, c, layout="rows").report
        teams = run_allpairs_virtual(m, 8192, c, layout="teams").report
        coll_rows = rows.max_time("bcast") + rows.max_time("reduce")
        coll_teams = teams.max_time("bcast") + teams.max_time("reduce")
        assert coll_teams < coll_rows

    def test_analytic_model_supports_layouts(self):
        from repro.machines import Hopper

        m = Hopper(96, cores_per_node=12)
        rows = allpairs_breakdown(m, 4096, 4, layout="rows")
        teams = allpairs_breakdown(m, 4096, 4, layout="teams")
        assert teams.get("bcast") < rows.get("bcast")
        assert rows.total > 0 and teams.total > 0

    def test_analytic_matches_sim_for_teams_layout(self):
        m = GenericTorus(nranks=64, cores_per_node=4, alpha=2e-6, beta=5e-10,
                         pair_time=5e-8)
        sim = run_allpairs_virtual(m, 8192, 4, layout="teams")
        model = allpairs_breakdown(m, 8192, 4, layout="teams")
        assert model.meta["makespan"] == pytest.approx(sim.elapsed, rel=0.05)

"""Particle distribution and result collection helpers."""

import numpy as np
import pytest

from repro.core import (
    team_blocks_even,
    team_blocks_spatial,
    virtual_team_blocks,
)
from repro.physics import ParticleSet, TeamGeometry, team_of_positions


class TestEvenBlocks:
    def test_partition(self):
        ps = ParticleSet.uniform_random(10, 2, 1.0, seed=0)
        blocks = team_blocks_even(ps, 3)
        assert [len(b) for b in blocks] == [4, 3, 3]
        assert np.array_equal(np.concatenate([b.ids for b in blocks]), ps.ids)

    def test_more_teams_than_particles(self):
        ps = ParticleSet.uniform_random(2, 2, 1.0)
        blocks = team_blocks_even(ps, 5)
        assert [len(b) for b in blocks] == [1, 1, 0, 0, 0]


class TestSpatialBlocks:
    def test_binning_consistent_with_domain(self):
        ps = ParticleSet.uniform_random(50, 2, 1.0, seed=1)
        g = TeamGeometry(1.0, (2, 2))
        blocks = team_blocks_spatial(ps, g)
        assert sum(len(b) for b in blocks) == 50
        for t, block in enumerate(blocks):
            if len(block):
                assert (team_of_positions(block.pos, g) == t).all()

    def test_empty_regions_allowed(self):
        ps = ParticleSet(np.full((3, 1), 0.05), np.zeros((3, 1)),
                         np.arange(3))
        g = TeamGeometry(1.0, (4,))
        blocks = team_blocks_spatial(ps, g)
        assert len(blocks[0]) == 3
        assert all(len(b) == 0 for b in blocks[1:])


class TestVirtualBlocks:
    def test_counts_match_even_split(self):
        blocks = virtual_team_blocks(10, 3)
        assert [b.count for b in blocks] == [4, 3, 3]
        assert [b.team for b in blocks] == [0, 1, 2]

    def test_total_preserved(self):
        blocks = virtual_team_blocks(4097, 16)
        assert sum(b.count for b in blocks) == 4097


class TestCollectLeaderForces:
    def test_missing_home_raises(self):
        from repro.core import collect_leader_forces
        from repro.core.ca_step import CAStepResult
        from repro.simmpi import ReplicatedGrid

        grid = ReplicatedGrid(p=2, c=1)
        results = [CAStepResult(row=0, col=0, npairs=0, updates=0, home=None)] * 2
        with pytest.raises(ValueError):
            collect_leader_forces(results, grid)

"""The run cache's contract: verified reads, atomic writes, self-healing.

:class:`repro.core.runcache.RunCache` is the durability layer under
``repro sweep --cache`` and every harness ``cache=`` knob, so its core
promise is pinned here directly: a cache *never serves a wrong or torn
value*.  Every way an on-disk entry can be damaged — truncation, bit
rot, a foreign file at the right path, a header from another namespace
or fingerprint, an unpicklable payload — must read as a miss, evict the
bad entry, and let the recomputed value land cleanly.
"""

import json
import os
import pickle
import zlib

import pytest

from repro.core.runcache import MISS, CacheStats, RunCache, resolve_cache


@pytest.fixture
def cache(tmp_path):
    return RunCache(str(tmp_path / "rc"), namespace="test-v1")


class TestRoundtrip:
    def test_put_then_get(self, cache):
        value = {"forces": b"\x00\x01", "elapsed": 1.5, "shape": [2, 1]}
        cache.put("fp;a=1", value)
        assert cache.get("fp;a=1") == value

    def test_miss_returns_sentinel_not_none(self, cache):
        assert cache.get("never-stored") is MISS

    def test_cached_none_is_distinguishable_from_miss(self, cache):
        cache.put("fp-none", None)
        assert cache.get("fp-none") is None
        assert cache.get("fp-none") is not MISS

    def test_get_default_overrides_sentinel(self, cache):
        assert cache.get("nope", default=42) == 42

    def test_overwrite_replaces_value(self, cache):
        cache.put("fp", 1)
        cache.put("fp", 2)
        assert cache.get("fp") == 2
        assert len(cache) == 1

    def test_len_and_clear(self, cache):
        for i in range(5):
            cache.put(f"fp{i}", i)
        assert len(cache) == 5
        assert cache.clear() == 5
        assert len(cache) == 0
        assert cache.get("fp0") is MISS


class TestContentAddressing:
    def test_key_is_pure_and_fans_out(self, cache):
        assert cache.key("fp") == cache.key("fp")
        path = cache.path_for("fp")
        assert path.endswith(".rcache")
        # root/<first two hex digits>/<full key>.rcache
        assert os.path.basename(os.path.dirname(path)) == cache.key("fp")[:2]

    def test_namespaces_do_not_collide(self, tmp_path):
        a = RunCache(str(tmp_path), namespace="a")
        b = RunCache(str(tmp_path), namespace="b")
        a.put("fp", "from-a")
        assert b.get("fp") is MISS
        b.put("fp", "from-b")
        assert a.get("fp") == "from-a"
        assert b.get("fp") == "from-b"

    def test_foreign_namespace_entry_at_same_path_not_served(self, tmp_path):
        # Same root, same fingerprint, different namespace *spoofed into
        # the same path*: the header's namespace check must reject it.
        a = RunCache(str(tmp_path), namespace="a")
        b = RunCache(str(tmp_path), namespace="b")
        b.put("fp", "b-value")
        os.makedirs(os.path.dirname(a.path_for("fp")), exist_ok=True)
        os.replace(b.path_for("fp"), a.path_for("fp"))
        assert a.get("fp") is MISS
        assert a.stats.evictions == 1


class TestSelfHealing:
    """Every corruption mode reads as an evicting miss, never a value."""

    def _entry_path(self, cache):
        cache.put("fp", {"payload": list(range(100))})
        return cache.path_for("fp")

    def test_truncated_entry_evicted(self, cache):
        path = self._entry_path(cache)
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        assert cache.get("fp") is MISS
        assert not os.path.exists(path)
        assert cache.stats.evictions == 1

    def test_flipped_payload_bit_fails_crc(self, cache):
        path = self._entry_path(cache)
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(blob))
        assert cache.get("fp") is MISS
        assert cache.stats.evictions == 1

    def test_garbage_file_evicted(self, cache):
        path = self._entry_path(cache)
        with open(path, "wb") as fh:
            fh.write(b"not an rcache entry at all")
        assert cache.get("fp") is MISS
        assert not os.path.exists(path)

    def test_wrong_fingerprint_in_header_not_served(self, cache):
        # A correct-looking entry stored under the wrong content address
        # (hash collision / manual copy) must not be served.
        cache.put("honest", "honest-value")
        os.makedirs(os.path.dirname(cache.path_for("victim")), exist_ok=True)
        os.replace(cache.path_for("honest"), cache.path_for("victim"))
        assert cache.get("victim") is MISS

    def test_unpicklable_payload_evicted(self, cache):
        path = self._entry_path(cache)
        payload = b"\x80\x05garbage-not-a-pickle"
        header = {"format": "repro-runcache-v1", "namespace": "test-v1",
                  "fingerprint": "fp", "nbytes": len(payload),
                  "crc32": zlib.crc32(payload)}
        with open(path, "wb") as fh:
            fh.write(json.dumps(header).encode() + b"\n" + payload)
        assert cache.get("fp") is MISS
        assert cache.stats.evictions == 1

    def test_evicted_entry_recomputes_and_stores_cleanly(self, cache):
        path = self._entry_path(cache)
        with open(path, "wb") as fh:
            fh.write(b"torn")
        assert cache.get("fp") is MISS
        cache.put("fp", "recomputed")
        assert cache.get("fp") == "recomputed"


class TestConcurrency:
    def test_no_temp_file_debris_after_puts(self, cache):
        for i in range(10):
            cache.put(f"fp{i}", os.urandom(256))
        for dirpath, _dirs, files in os.walk(cache.root):
            assert not [f for f in files if f.startswith(".rcache-")]

    def test_concurrent_writers_race_benignly(self, tmp_path):
        # Two instances writing the same key: last replace wins, and the
        # survivor is a complete, verified entry.
        a = RunCache(str(tmp_path), namespace="n")
        b = RunCache(str(tmp_path), namespace="n")
        a.put("fp", "value")
        b.put("fp", "value")
        assert a.get("fp") == "value"
        assert len(a) == 1


class TestStats:
    def test_counters_track_operations(self, cache):
        cache.get("x")
        cache.put("x", 1)
        cache.get("x")
        assert cache.stats == CacheStats(hits=1, misses=1, stores=1,
                                         evictions=0)
        assert "hits=1" in cache.stats.describe()


class TestResolveCache:
    def test_none_passes_through(self):
        assert resolve_cache(None) is None

    def test_path_becomes_namespaced_cache(self, tmp_path):
        rc = resolve_cache(str(tmp_path / "c"), namespace="ns")
        assert isinstance(rc, RunCache)
        assert rc.namespace == "ns"

    def test_instance_keeps_its_own_namespace(self, tmp_path):
        mine = RunCache(str(tmp_path), namespace="deliberate")
        assert resolve_cache(mine, namespace="other") is mine

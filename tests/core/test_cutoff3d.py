"""3-D cutoff decompositions: the Section IV-C generalization beyond the
paper's 1-D/2-D experiments (its related work — Snir, Shaw, Anton — is all
3-D, and the window machinery here is dimension-generic)."""

import numpy as np
import pytest

from repro.core import cutoff_config, run_cutoff, run_cutoff_virtual
from repro.machines import GenericMachine, InstantMachine
from repro.physics import ForceLaw, ParticleSet, reference_forces, reference_pair_matrix

from tests.conftest import assert_forces_close


class TestCutoff3D:
    @pytest.mark.parametrize("p,c", [(8, 1), (8, 2), (27, 1)])
    @pytest.mark.parametrize("rcut", [0.3, 0.55])
    def test_forces_match_reference(self, p, c, rcut, law):
        ps = ParticleSet.uniform_random(80, 3, 1.0, seed=101)
        ref = reference_forces(law.with_rcut(rcut), ps)
        out = run_cutoff(GenericMachine(nranks=p), ps, c, rcut=rcut,
                         box_length=1.0, dim=3, law=law)
        assert_forces_close(out.forces, ref)

    @pytest.mark.parametrize("p,c", [(8, 2), (16, 2), (27, 3)])
    def test_coverage(self, p, c, law):
        n = 50
        ps = ParticleSet.uniform_random(n, 3, 1.0, seed=102)
        rcut = 0.4
        counter = np.zeros((n, n), dtype=np.int64)
        run_cutoff(InstantMachine(nranks=p), ps, c, rcut=rcut, box_length=1.0,
                   dim=3, law=law, pair_counter=counter)
        assert (counter == reference_pair_matrix(law.with_rcut(rcut), ps)).all()

    def test_3d_window_is_cube(self):
        cfg = cutoff_config(64, 1, rcut=0.3, box_length=1.0, dim=3)
        assert cfg.geometry.team_dims == (4, 4, 4)
        assert cfg.geometry.spanned_cells(0.3) == (2, 2, 2)
        # Physical window is (2m+1)^3 = 125 offsets... clipped by aliasing
        # on the 4-wide grid; all positions still schedule exactly once.
        cfg.schedule.validate()

    def test_periodic_3d(self, law):
        ps = ParticleSet.uniform_random(60, 3, 1.0, seed=103)
        rcut = 0.3
        ref = reference_forces(law.with_rcut(rcut).with_box(1.0), ps)
        out = run_cutoff(GenericMachine(nranks=8), ps, 2, rcut=rcut,
                         box_length=1.0, dim=3, law=law, periodic=True)
        assert_forces_close(out.forces, ref)

    def test_neighbor_count_grows_with_dimension(self):
        """'Communication avoidance becomes especially important in higher
        dimensions because the number of neighbors is exponential in the
        dimensionality' (Section IV-C)."""
        n = 4096
        msgs = {}
        for dim, p in ((1, 64), (2, 64), (3, 64)):
            run = run_cutoff_virtual(GenericMachine(nranks=p), n, 1,
                                     rcut=0.4, box_length=1.0, dim=dim)
            msgs[dim] = run.report.max_messages("shift")
        assert msgs[1] < msgs[2] <= msgs[3] + 1

    def test_pencil_decomposition_of_3d_particles(self, law):
        """2-D team grid over 3-D particles (pencil regions)."""
        ps = ParticleSet.uniform_random(60, 3, 1.0, seed=104)
        rcut = 0.35
        ref = reference_forces(law.with_rcut(rcut), ps)
        out = run_cutoff(GenericMachine(nranks=8), ps, 2, rcut=rcut,
                         box_length=1.0, dim=2, law=law)
        assert_forces_close(out.forces, ref)

"""Checkpoint/restart for the simulation driver.

The strongest invariant available is locked throughout: checkpointing is
invisible (a checkpointed run equals an uncheckpointed one bitwise, clocks
included), and resuming from any mid-run checkpoint replays to the
uninterrupted run's final state **bitwise** — across decompositions,
workloads, integrators and fault schedules.
"""

import os

import numpy as np
import pytest

from repro.core.allpairs import allpairs_config
from repro.core.checkpoint import CheckpointPolicy, simulation_fingerprint
from repro.core.cutoff import cutoff_config
from repro.core.decomposition import team_blocks_even, team_blocks_spatial
from repro.core.driver import SimulationConfig, run_simulation
from repro.machines import GenericMachine
from repro.physics.forces import ForceLaw
from repro.physics.io import CheckpointError, load_checkpoint
from repro.physics.particles import ParticleSet
from repro.physics.workloads import gaussian_clusters
from repro.simmpi.faults import FaultSchedule, KillRank

_P, _C = 8, 2


def make_sim(algorithm="cutoff", integrator="euler", workload="uniform",
             nsteps=4, n=48):
    if workload == "uniform":
        ps = ParticleSet.uniform_random(n, 2, 1.0, max_speed=0.05, seed=99)
    else:
        ps = gaussian_clusters(n, 2, 1.0, nclusters=3, spread=0.08,
                               max_speed=0.05, seed=99)
    if algorithm == "cutoff":
        cfg = cutoff_config(_P, _C, rcut=0.4, box_length=1.0, dim=2)
        blocks = team_blocks_spatial(ps, cfg.geometry)
    else:
        cfg = allpairs_config(_P, _C)
        blocks = team_blocks_even(ps, cfg.grid.nteams)
    scfg = SimulationConfig(cfg=cfg, law=ForceLaw(k=1e-5, softening=5e-3),
                            dt=5e-4, nsteps=nsteps, box_length=1.0,
                            integrator=integrator)
    return GenericMachine(nranks=_P), scfg, blocks


def assert_same_state(got, ref):
    assert np.array_equal(got.particles.pos, ref.particles.pos)
    assert np.array_equal(got.particles.vel, ref.particles.vel)
    assert np.array_equal(got.particles.ids, ref.particles.ids)
    assert np.array_equal(got.forces, ref.forces)


class TestPolicy:
    def test_every_cadence(self, tmp_path):
        pol = CheckpointPolicy(directory=tmp_path, every=2)
        assert [s for s in range(7) if pol.due(s)] == [2, 4, 6]

    def test_disabled_by_default(self, tmp_path):
        pol = CheckpointPolicy(directory=tmp_path)
        assert not any(pol.due(s) for s in range(10))

    def test_at_steps(self, tmp_path):
        pol = CheckpointPolicy(directory=tmp_path, at_steps=(3, 5))
        assert [s for s in range(7) if pol.due(s)] == [3, 5]

    def test_trigger_predicate(self, tmp_path):
        pol = CheckpointPolicy(directory=tmp_path,
                               trigger=lambda s: s in (1, 4))
        assert [s for s in range(7) if pol.due(s)] == [1, 4]

    def test_request_fires_any_step(self, tmp_path):
        pol = CheckpointPolicy(directory=tmp_path)
        assert not pol.due(3)
        pol.request()
        assert pol.due(3) and pol.due(4)  # one-shot until a write clears it

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointPolicy(directory=tmp_path, every=-1)
        with pytest.raises(ValueError):
            CheckpointPolicy(directory=tmp_path, keep=-1)

    def test_path_for_is_step_stamped(self, tmp_path):
        pol = CheckpointPolicy(directory=tmp_path)
        assert pol.path_for(7).endswith("checkpoint-step000007.npz")


class TestFingerprint:
    def test_stable_and_horizon_independent(self):
        _, a, _ = make_sim(nsteps=4)
        _, b, _ = make_sim(nsteps=9)  # nsteps must not participate
        assert simulation_fingerprint(a) == simulation_fingerprint(b)

    @pytest.mark.parametrize("change", ["dt", "law", "integrator"])
    def test_physics_changes_the_fingerprint(self, change):
        _, base, _ = make_sim()
        _, other, _ = make_sim(integrator="verlet" if change == "integrator"
                               else "euler")
        if change == "dt":
            other = SimulationConfig(cfg=base.cfg, law=base.law, dt=1e-3,
                                     nsteps=base.nsteps, box_length=1.0)
        elif change == "law":
            other = SimulationConfig(cfg=base.cfg, law=ForceLaw(k=2e-5),
                                     dt=base.dt, nsteps=base.nsteps,
                                     box_length=1.0)
        assert simulation_fingerprint(base) != simulation_fingerprint(other)

    def test_grid_changes_the_fingerprint(self):
        law = ForceLaw(k=1e-5, softening=5e-3)
        a = SimulationConfig(cfg=allpairs_config(8, 2), law=law, dt=5e-4,
                             nsteps=2, box_length=1.0)
        b = SimulationConfig(cfg=allpairs_config(8, 4), law=law, dt=5e-4,
                             nsteps=2, box_length=1.0)
        assert simulation_fingerprint(a) != simulation_fingerprint(b)


class TestDriverCheckpointing:
    def test_files_written_on_cadence(self, tmp_path):
        machine, scfg, blocks = make_sim(nsteps=4)
        res = run_simulation(machine, scfg, blocks,
                             checkpoint=CheckpointPolicy(directory=tmp_path,
                                                         every=1))
        assert [s for s, _ in res.checkpoints] == [1, 2, 3, 4]
        for step, path in res.checkpoints:
            ck = load_checkpoint(path,
                                 expect_fingerprint=simulation_fingerprint(scfg))
            assert ck.step == step
            assert len(ck.blocks) == scfg.cfg.grid.nteams

    def test_checkpointing_is_invisible(self, tmp_path):
        machine, scfg, blocks = make_sim()
        plain = run_simulation(machine, scfg, blocks)
        ck = run_simulation(machine, scfg, blocks,
                            checkpoint=CheckpointPolicy(directory=tmp_path,
                                                        every=1))
        assert_same_state(ck, plain)
        assert ck.run.clocks == plain.run.clocks  # zero virtual-time I/O

    def test_keep_prunes_old_files(self, tmp_path):
        machine, scfg, blocks = make_sim(nsteps=4)
        res = run_simulation(machine, scfg, blocks,
                             checkpoint=CheckpointPolicy(directory=tmp_path,
                                                         every=1, keep=2))
        assert [s for s, _ in res.checkpoints] == [3, 4]
        assert sorted(os.path.basename(p) for p in tmp_path.iterdir()) == [
            "checkpoint-step000003.npz", "checkpoint-step000004.npz"]

    def test_request_writes_once_then_clears(self, tmp_path):
        machine, scfg, blocks = make_sim(nsteps=3)
        pol = CheckpointPolicy(directory=tmp_path)
        pol.request()
        res = run_simulation(machine, scfg, blocks, checkpoint=pol)
        assert [s for s, _ in res.checkpoints] == [1]
        assert not pol._requested


class TestResumeBitwise:
    @pytest.mark.parametrize("workload", ["uniform", "clustered"])
    @pytest.mark.parametrize("integrator", ["euler", "verlet"])
    @pytest.mark.parametrize("algorithm", ["allpairs", "cutoff"])
    def test_resume_matches_uninterrupted_run(self, tmp_path, algorithm,
                                              integrator, workload):
        machine, scfg, blocks = make_sim(algorithm, integrator, workload)
        ref = run_simulation(machine, scfg, blocks)
        ck = run_simulation(machine, scfg, blocks,
                            checkpoint=CheckpointPolicy(directory=tmp_path,
                                                        every=1))
        assert_same_state(ck, ref)
        # Resume from every mid-run checkpoint; each must land bitwise.
        for step, path in ck.checkpoints:
            if step >= scfg.nsteps:
                continue
            resumed = run_simulation(machine, scfg, resume_from=path)
            assert_same_state(resumed, ref)

    def test_resume_can_extend_the_horizon(self, tmp_path):
        machine, scfg, blocks = make_sim(nsteps=2)
        ck = run_simulation(machine, scfg, blocks,
                            checkpoint=CheckpointPolicy(directory=tmp_path,
                                                        every=1))
        _, scfg6, _ = make_sim(nsteps=6)
        ref = run_simulation(machine, scfg6, blocks)
        resumed = run_simulation(machine, scfg6,
                                 resume_from=ck.checkpoints[-1][1])
        assert_same_state(resumed, ref)


@pytest.mark.faults
class TestResumeUnderFaults:
    def test_acceptance_criterion_lock(self, tmp_path):
        """The PR's headline guarantee: a multi-step cutoff simulation with a
        mid-run rank kill AND a mid-run checkpoint+resume stays bitwise
        identical to the fault-free uninterrupted run."""
        machine, scfg, blocks = make_sim("cutoff", nsteps=5)
        ref = run_simulation(machine, scfg, blocks)
        sched = FaultSchedule(events=(KillRank(6, after_ops=40),))
        chaos = run_simulation(machine, scfg, blocks, faults=sched,
                               checkpoint=CheckpointPolicy(directory=tmp_path,
                                                           every=2))
        assert list(chaos.run.deaths) == [6]
        assert_same_state(chaos, ref)
        midrun = [(s, p) for s, p in chaos.checkpoints if 0 < s < scfg.nsteps]
        assert midrun, "the kill must not suppress mid-run checkpoints"
        for step, path in midrun:
            resumed = run_simulation(machine, scfg, resume_from=path)
            assert_same_state(resumed, ref)

    def test_resume_under_the_same_schedule(self, tmp_path):
        """Resuming *with faults re-armed* also recovers to the reference:
        op counters restart at the resume point, so the kill re-fires and
        is absorbed again."""
        machine, scfg, blocks = make_sim("cutoff", nsteps=5)
        ref = run_simulation(machine, scfg, blocks)
        sched = FaultSchedule(events=(KillRank(6, after_ops=40),))
        chaos = run_simulation(machine, scfg, blocks, faults=sched,
                               checkpoint=CheckpointPolicy(directory=tmp_path,
                                                           every=2))
        step, path = chaos.checkpoints[0]
        resumed = run_simulation(machine, scfg, resume_from=path,
                                 faults=sched)
        assert list(resumed.run.deaths) == [6]
        assert_same_state(resumed, ref)

    def test_allpairs_kill_with_checkpoints(self, tmp_path):
        machine, scfg, blocks = make_sim("allpairs", nsteps=4)
        ref = run_simulation(machine, scfg, blocks)
        sched = FaultSchedule(events=(KillRank(5, after_ops=20),))
        chaos = run_simulation(machine, scfg, blocks, faults=sched,
                               checkpoint=CheckpointPolicy(directory=tmp_path,
                                                           every=1))
        assert_same_state(chaos, ref)
        resumed = run_simulation(machine, scfg,
                                 resume_from=chaos.checkpoints[1][1])
        assert_same_state(resumed, ref)


class TestResumeErrors:
    def _checkpointed(self, tmp_path, **kw):
        machine, scfg, blocks = make_sim(**kw)
        res = run_simulation(machine, scfg, blocks,
                             checkpoint=CheckpointPolicy(directory=tmp_path,
                                                         every=1))
        return machine, scfg, blocks, res

    def test_resume_past_the_horizon_rejected(self, tmp_path):
        machine, scfg, _, res = self._checkpointed(tmp_path, nsteps=3)
        final = res.checkpoints[-1][1]
        with pytest.raises(ValueError, match="nothing to do"):
            run_simulation(machine, scfg, resume_from=final)

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        machine, scfg, _, res = self._checkpointed(tmp_path)
        other = SimulationConfig(cfg=scfg.cfg, law=scfg.law, dt=1e-3,
                                 nsteps=scfg.nsteps, box_length=1.0)
        with pytest.raises(CheckpointError, match="refusing to resume"):
            run_simulation(machine, other, resume_from=res.checkpoints[0][1])

    def test_initial_blocks_required_without_resume(self):
        machine, scfg, _ = make_sim()
        with pytest.raises(ValueError, match="initial_blocks"):
            run_simulation(machine, scfg)

    def test_truncated_checkpoint_fails_resume_loudly(self, tmp_path):
        # A torn write (host crash mid-copy, half-synced NFS) must refuse
        # to resume with a loud integrity error, never start from garbage.
        machine, scfg, _, res = self._checkpointed(tmp_path)
        step, path = res.checkpoints[0]
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError, match="unreadable|truncated"):
            run_simulation(machine, scfg, resume_from=path)

    def test_bitrot_checkpoint_names_the_corrupt_array(self, tmp_path):
        # Silent single-array corruption (bit rot, partial overwrite) is
        # caught by the per-array CRC and the error names the victim.
        import numpy as np

        machine, scfg, _, res = self._checkpointed(tmp_path)
        step, path = res.checkpoints[0]
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
        arrays["pos_0"] = arrays["pos_0"] + 1e-9  # checksums left stale
        np.savez(path, **arrays)
        with pytest.raises(CheckpointError,
                           match="checksum mismatch on array 'pos_0'"):
            run_simulation(machine, scfg, resume_from=path)

    def test_verlet_cannot_resume_from_euler_checkpoint(self, tmp_path):
        machine, scfg, _, res = self._checkpointed(tmp_path,
                                                   integrator="euler")
        _, vcfg, _ = make_sim(integrator="verlet")
        # Same physics but a different integrator: the fingerprint guard
        # fires before the forces check ever could.
        with pytest.raises(CheckpointError):
            run_simulation(machine, vcfg, resume_from=res.checkpoints[0][1])

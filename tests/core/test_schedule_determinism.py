"""Bitwise-determinism locks under perturbed schedules, registry-wide.

Every registered algorithm (functional and modeled) runs once under FIFO
and once under each of five perturbed scheduler policies; every observable
— forces and particle ids (bitwise), the makespan, every rank's final
clock, and every per-rank per-phase time/traffic total — must be
identical.  The matrix is parametrized off the registry itself
(like ``tests/core/test_registry.py``), so a newly registered algorithm
is locked for free.

These are the in-suite locks; ``python -m repro schedfuzz`` explores the
same contract at campaign scale (100+ schedules per algorithm).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RunSpec, get_algorithm, list_algorithms, run
from repro.machines import GenericMachine

#: Five derived seeds plus the deterministic anti-FIFO policy: the same
#: spread of interleavings the fuzzer explores, small enough for tier 1.
SCHEDULES = ["random:1", "random:2", "random:3", "random:4", "random:5",
             "adversarial"]

_P, _N, _C, _RCUT, _SEED = 16, 64, 2, 0.3, 0


def _spec(name: str, schedule=None) -> RunSpec:
    alg = get_algorithm(name)
    return RunSpec(
        machine=GenericMachine(nranks=_P), algorithm=name, n=_N,
        c=_C if alg.supports_c else 1,
        rcut=_RCUT if alg.needs_rcut else None,
        seed=_SEED, schedule=schedule,
    )


def _signature(out):
    phases = {
        (tr.rank, label): (tot.seconds, tot.messages_sent,
                           tot.messages_received, tot.bytes_sent,
                           tot.bytes_received, tot.retries, tot.redelivered)
        for tr in out.run.report.traces
        for label, tot in tr.phases.items()
    }
    forces = None if out.forces is None else \
        (out.forces.tobytes(), out.ids.tobytes())
    return (forces, out.run.elapsed, tuple(out.run.clocks), phases)


@pytest.fixture(scope="module")
def fifo_baselines():
    """One FIFO run per algorithm, shared by every schedule case."""
    return {name: _signature(run(_spec(name))) for name in list_algorithms()}


@pytest.mark.parametrize("schedule", SCHEDULES)
@pytest.mark.parametrize("name", list_algorithms())
def test_bitwise_identical_under_perturbed_schedule(name, schedule,
                                                    fifo_baselines):
    got = run(_spec(name, schedule=schedule))
    want = fifo_baselines[name]
    sig = _signature(got)
    if got.forces is not None:
        assert sig[0] == want[0], \
            f"{name}: forces/ids diverged under schedule {schedule!r}"
        a = np.frombuffer(sig[0][0], dtype=np.float64)
        assert np.isfinite(a).all()
    assert sig[1] == want[1], \
        f"{name}: makespan diverged under schedule {schedule!r}"
    assert sig[2] == want[2], \
        f"{name}: rank clocks diverged under schedule {schedule!r}"
    assert sig[3] == want[3], \
        f"{name}: phase totals diverged under schedule {schedule!r}"

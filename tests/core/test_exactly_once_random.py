"""Randomized exactly-once harness.

The structured coverage tests in ``test_allpairs.py`` / ``test_cutoff.py``
enumerate hand-picked ``(p, c)`` grids.  This harness instead *draws*
configurations — particle count, processor count, replication factor,
cutoff radius, dimensionality — from seeded independent streams
(:func:`repro.util.rng.spawn_rngs`) and asserts the one invariant the
paper's Theorem 1 rests on: every ordered interacting pair is accumulated
**exactly once**, for all-pairs and cutoff schedules alike.

Each parametrized case owns one child stream, so adding or removing cases
never reshuffles the others, and a failing case is reproducible from its
index alone.
"""

import numpy as np
import pytest

from repro.core import allpairs_config, run_allpairs, run_cutoff
from repro.machines import InstantMachine
from repro.physics import ForceLaw, ParticleSet, reference_pair_matrix
from repro.util.rng import spawn_rngs

#: One fixed master seed for the whole harness; case ``i`` always sees the
#: same child stream no matter which other cases run.
_HARNESS_SEED = 20130520
_NCASES = 12

#: Processor counts with rich divisor structure, so random replication
#: factors exercise square, tall and degenerate grids.
_PS = (4, 6, 8, 9, 12, 16)


def _case_rng(index: int) -> np.random.Generator:
    return spawn_rngs(_HARNESS_SEED, _NCASES)[index]


def _draw_pc(rng) -> tuple[int, int]:
    p = int(rng.choice(_PS))
    divisors = [d for d in range(1, p + 1) if p % d == 0]
    c = int(rng.choice(divisors))
    return p, c


def _draw_particles(rng, p, c, dim) -> ParticleSet:
    # Deliberately biased toward n that does NOT divide the team count:
    # uneven leader blocks (including empty ones) must still cover every
    # pair exactly once.
    nteams = p // c
    n = int(rng.integers(nteams + 1, 97))
    if n % nteams == 0:
        n += 1
    return ParticleSet.uniform_random(n, dim, 1.0,
                                      seed=int(rng.integers(2**31)))


@pytest.mark.parametrize("index", range(_NCASES))
def test_allpairs_random_config_covers_every_pair_once(index):
    rng = _case_rng(index)
    p, c = _draw_pc(rng)
    ps = _draw_particles(rng, p, c, dim=2)
    law = ForceLaw()
    counter = np.zeros((len(ps), len(ps)), dtype=np.int64)
    run_allpairs(InstantMachine(nranks=p), ps, c, law=law,
                 pair_counter=counter)
    expected = reference_pair_matrix(law, ps)
    assert (counter == expected).all(), (
        f"case {index}: n={len(ps)} p={p} c={c} missed or duplicated pairs"
    )
    assert counter.diagonal().sum() == 0


@pytest.mark.parametrize("index", range(_NCASES))
def test_cutoff_random_config_covers_every_pair_once(index):
    rng = _case_rng(index)
    p, c = _draw_pc(rng)
    dim = int(rng.choice([1, 2]))
    rcut = float(rng.uniform(0.15, 0.9))
    ps = _draw_particles(rng, p, c, dim=2)
    law = ForceLaw()
    counter = np.zeros((len(ps), len(ps)), dtype=np.int64)
    run_cutoff(InstantMachine(nranks=p), ps, c, rcut=rcut, box_length=1.0,
               dim=dim, law=law, pair_counter=counter)
    expected = reference_pair_matrix(law.with_rcut(rcut), ps)
    assert (counter == expected).all(), (
        f"case {index}: n={len(ps)} p={p} c={c} rcut={rcut:.3f} dim={dim} "
        "missed or duplicated in-range pairs"
    )


@pytest.mark.parametrize("index", range(_NCASES))
def test_non_divisor_replication_rejected(index):
    rng = _case_rng(index)
    p = int(rng.choice(_PS))
    non_divisors = [c for c in range(2, p) if p % c != 0]
    if not non_divisors:
        pytest.skip(f"p={p} has no non-divisor in (1, p)")
    c = int(rng.choice(non_divisors))
    with pytest.raises(ValueError):
        allpairs_config(p, c)


def test_harness_draws_uneven_blocks():
    """The generator must actually exercise n that team counts don't divide."""
    uneven = multi_team = 0
    for index in range(_NCASES):
        rng = _case_rng(index)
        p, c = _draw_pc(rng)
        ps = _draw_particles(rng, p, c, dim=2)
        nteams = p // c
        multi_team += nteams > 1
        uneven += nteams > 1 and len(ps) % nteams != 0
    # Every multi-team case is uneven by construction, and most draws
    # produce more than one team (c == p collapses to a single team).
    assert uneven == multi_team
    assert multi_team >= _NCASES // 2


def test_case_streams_are_stable():
    """Case i's draws don't depend on how many cases the harness has."""
    a = spawn_rngs(_HARNESS_SEED, _NCASES)[3].integers(2**31, size=4)
    b = spawn_rngs(_HARNESS_SEED, _NCASES + 5)[3].integers(2**31, size=4)
    assert np.array_equal(a, b)

"""Scatter-from-root / gather-to-root on-ramps."""

import numpy as np
import pytest

from repro.core import (
    allpairs_config,
    cutoff_config,
    distribute_from_root,
    gather_to_root,
)
from repro.core.ca_step import ca_interaction_step
from repro.machines import GenericMachine
from repro.physics import ForceLaw, ParticleSet, RealKernel, reference_forces
from repro.simmpi import Engine

from tests.conftest import assert_forces_close


def full_pipeline(p, c, ps, law, geometry=None):
    cfg = (cutoff_config(p, c, rcut=0.3, box_length=1.0, dim=2)
           if geometry else allpairs_config(p, c))
    kernel = RealKernel(
        law=law if not geometry else law.with_rcut(0.3)
    )

    def program(comm):
        block = yield from distribute_from_root(
            comm, cfg.grid, ps if comm.rank == 0 else None,
            geometry=cfg.geometry if geometry else None,
        )
        res = yield from ca_interaction_step(comm, cfg, kernel, block)
        out_block = res.home.particles if res.home is not None else None
        full = yield from gather_to_root(comm, cfg.grid, out_block)
        forces = res.home.forces if res.home is not None else None
        return (full, res.col if forces is not None else None, forces)

    return Engine(GenericMachine(nranks=p)).run(program), cfg


class TestDistributeGather:
    @pytest.mark.parametrize("p,c", [(4, 1), (8, 2), (12, 3)])
    def test_round_trip_preserves_particles(self, p, c, law):
        ps = ParticleSet.uniform_random(50, 2, 1.0, seed=77)
        run, _ = full_pipeline(p, c, ps, law)
        full = run.results[0][0]
        assert np.array_equal(full.ids, np.arange(50))
        assert np.allclose(full.sorted_by_id().pos, ps.sorted_by_id().pos)
        assert all(r[0] is None for r in run.results[1:])

    def test_forces_correct_through_pipeline(self, law):
        """distribute -> interact -> forces match the serial reference."""
        ps = ParticleSet.uniform_random(48, 2, 1.0, seed=78)
        cfg = allpairs_config(8, 2)
        kernel = RealKernel(law=law)

        def program(comm):
            block = yield from distribute_from_root(
                comm, cfg.grid, ps if comm.rank == 0 else None
            )
            res = yield from ca_interaction_step(comm, cfg, kernel, block)
            if res.home is None:
                return None
            return (res.home.particles.ids, res.home.forces)

        run = Engine(GenericMachine(nranks=8)).run(program)
        pairs = [r for r in run.results if r is not None]
        ids = np.concatenate([i for i, _ in pairs])
        forces = np.concatenate([f for _, f in pairs])
        order = np.argsort(ids, kind="stable")
        ref = reference_forces(law, ps)
        assert_forces_close(forces[order], ref)

    def test_spatial_distribution_from_root(self, law):
        ps = ParticleSet.uniform_random(60, 2, 1.0, seed=79)
        run, cfg = full_pipeline(8, 2, ps, law, geometry=True)
        full = run.results[0][0]
        assert np.array_equal(full.ids, np.arange(60))

    def test_phases_traced(self, law):
        ps = ParticleSet.uniform_random(30, 2, 1.0, seed=80)
        run, _ = full_pipeline(4, 2, ps, law)
        labels = run.report.phase_labels()
        assert "distribute" in labels and "collect" in labels
        assert run.report.max_bytes("distribute") > 0

    def test_missing_particles_on_root_raises(self, law):
        cfg = allpairs_config(4, 1)

        def program(comm):
            block = yield from distribute_from_root(comm, cfg.grid, None)
            return block

        with pytest.raises(Exception, match="rank 0 must supply"):
            Engine(GenericMachine(nranks=4)).run(program)

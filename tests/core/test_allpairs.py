"""The CA all-pairs algorithm (Algorithm 1): correctness, coverage, costs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import allpairs_config, run_allpairs, run_allpairs_virtual
from repro.machines import GenericMachine, GenericTorus, InstantMachine
from repro.physics import ForceLaw, ParticleSet, reference_forces, reference_pair_matrix
from repro.theory import ca_allpairs_cost

from tests.conftest import assert_forces_close


def all_pc_configs():
    return [
        (4, 1), (4, 2), (4, 4),
        (8, 1), (8, 2), (8, 4), (8, 8),
        (12, 1), (12, 2), (12, 3), (12, 4), (12, 6),
        (16, 4), (16, 16), (9, 3), (6, 6),
    ]


class TestCorrectness:
    @pytest.mark.parametrize("p,c", all_pc_configs())
    def test_forces_match_reference(self, p, c, law, particles_2d):
        ref = reference_forces(law, particles_2d)
        out = run_allpairs(GenericMachine(nranks=p), particles_2d, c, law=law)
        assert np.array_equal(out.ids, np.sort(particles_2d.ids))
        assert_forces_close(out.forces, ref)

    @pytest.mark.parametrize("p,c", [(8, 2), (12, 3)])
    def test_1d_particles(self, p, c, law, particles_1d):
        ref = reference_forces(law, particles_1d)
        out = run_allpairs(GenericMachine(nranks=p), particles_1d, c, law=law)
        assert_forces_close(out.forces, ref)

    def test_single_rank(self, law, particles_2d):
        out = run_allpairs(GenericMachine(nranks=1), particles_2d, 1, law=law)
        assert_forces_close(out.forces, reference_forces(law, particles_2d))

    def test_n_smaller_than_teams(self, law):
        ps = ParticleSet.uniform_random(5, 2, 1.0, seed=0)
        out = run_allpairs(GenericMachine(nranks=8), ps, 1, law=law)
        assert_forces_close(out.forces, reference_forces(law, ps))

    def test_results_independent_of_c(self, law, particles_2d):
        """Different replication factors agree to reduction-order noise."""
        outs = [
            run_allpairs(GenericMachine(nranks=8), particles_2d, c, law=law).forces
            for c in (1, 2, 4, 8)
        ]
        for f in outs[1:]:
            assert_forces_close(f, outs[0])


class TestExactlyOnceCoverage:
    @pytest.mark.parametrize("p,c", all_pc_configs())
    def test_every_ordered_pair_once(self, p, c, law):
        n = 48
        ps = ParticleSet.uniform_random(n, 2, 1.0, seed=77)
        pc_matrix = np.zeros((n, n), dtype=np.int64)
        run_allpairs(InstantMachine(nranks=p), ps, c, law=law,
                     pair_counter=pc_matrix)
        assert (pc_matrix == reference_pair_matrix(law, ps)).all()

    @settings(max_examples=15, deadline=None)
    @given(
        pc=st.sampled_from(all_pc_configs()),
        n=st.integers(8, 64),
        seed=st.integers(0, 999),
    )
    def test_coverage_property(self, pc, n, seed):
        p, c = pc
        law = ForceLaw()
        ps = ParticleSet.uniform_random(n, 2, 1.0, seed=seed)
        counter = np.zeros((n, n), dtype=np.int64)
        run_allpairs(InstantMachine(nranks=p), ps, c, law=law,
                     pair_counter=counter)
        assert (counter == reference_pair_matrix(law, ps)).all()


class TestCommunicationCosts:
    """Measured traffic must match the paper's Equation 5 up to constants."""

    def test_messages_scale_as_p_over_c_squared(self):
        p, n = 64, 4096
        msgs = {}
        for c in (1, 2, 4, 8):
            run = run_allpairs_virtual(GenericMachine(nranks=p), n, c)
            msgs[c] = run.report.max_messages("shift")
        # Shift messages ~ p/c^2 (one per step, plus the skew).
        for c in (1, 2, 4, 8):
            expect = ca_allpairs_cost(n, p, c).messages
            assert msgs[c] <= expect + 2
            assert msgs[c] >= expect - 1

    def test_words_scale_as_n_over_c(self):
        p, n = 64, 4096
        for c in (1, 2, 4, 8):
            run = run_allpairs_virtual(GenericMachine(nranks=p), n, c)
            got = run.report.max_bytes("shift")
            expect_words = ca_allpairs_cost(n, p, c).words  # particles
            # 52 bytes per particle; the skew adds one extra block.
            assert got <= 52 * (expect_words + n * c / p) * 1.05
            assert got >= 52 * expect_words * 0.5

    def test_total_interactions_conserved(self):
        """Sum of per-rank scanned pairs is exactly n^2 regardless of c."""
        p, n = 16, 1024
        for c in (1, 2, 4):
            run = run_allpairs_virtual(GenericMachine(nranks=p), n, c)
            total = sum(r.npairs for r in run.results)
            assert total == n * n

    def test_compute_time_balanced(self):
        p, n = 16, 1024
        run = run_allpairs_virtual(GenericMachine(nranks=p), n, 4)
        per_rank = [r.npairs for r in run.results]
        assert max(per_rank) <= 2 * min(per_rank)

    def test_communication_decreases_with_c(self, torus64):
        comm = []
        for c in (1, 2, 4, 8):
            rep = run_allpairs_virtual(torus64, 4096, c).report
            comm.append(rep.max_time("shift"))
        assert comm[0] > comm[1] > comm[2] > comm[3]

    def test_shift_drops_superlinearly(self, torus64):
        r1 = run_allpairs_virtual(torus64, 8192, 1).report.max_time("shift")
        r4 = run_allpairs_virtual(torus64, 8192, 4).report.max_time("shift")
        # Equation 5 predicts ~c^2 = 16x; allow generous slack for latency.
        assert r1 / r4 > 4


class TestConfig:
    def test_config_validation(self):
        cfg = allpairs_config(12, 3)
        assert cfg.grid.nteams == 4
        assert cfg.rcut is None
        assert cfg.reachable(0, 3)

    def test_c_must_divide_p(self):
        with pytest.raises(ValueError):
            allpairs_config(10, 4)

    def test_engine_size_must_match(self, law, particles_2d):
        from repro.core.ca_step import ca_interaction_step
        from repro.physics.kernels import RealKernel
        from repro.simmpi import Engine

        cfg = allpairs_config(8, 2)
        kernel = RealKernel(law=law)

        def program(comm):
            res = yield from ca_interaction_step(comm, cfg, kernel, None)
            return res

        with pytest.raises(Exception):
            Engine(GenericMachine(nranks=4)).run(program)


class TestPhases:
    def test_expected_phases_present(self, torus64):
        rep = run_allpairs_virtual(torus64, 2048, 4).report
        labels = rep.phase_labels()
        for lab in ("bcast", "shift", "compute", "reduce"):
            assert lab in labels

    def test_c1_has_no_collectives(self, torus64):
        rep = run_allpairs_virtual(torus64, 2048, 1).report
        assert rep.max_time("bcast") == 0.0
        assert rep.max_time("reduce") == 0.0

    def test_functional_and_virtual_same_structure(self, law):
        """Real and phantom runs produce identical message counts."""
        p, c, n = 8, 2, 64
        ps = ParticleSet.uniform_random(n, 2, 1.0, seed=5)
        m = GenericTorus(nranks=p, cores_per_node=2)
        real = run_allpairs(m, ps, c, law=law).run.report
        virt = run_allpairs_virtual(m, n, c).report
        for lab in ("bcast", "shift", "reduce"):
            assert real.max_messages(lab) == virt.max_messages(lab)
            assert real.max_bytes(lab) == virt.max_bytes(lab)

"""Periodic-boundary extension: correctness and load-balance properties.

The paper's box is reflective; it attributes its cutoff runs' inefficiency
to the resulting boundary load imbalance ("processors assigned to regions
near the boundary of the simulation space have fewer interactions to
compute").  The periodic extension makes every team statistically
equivalent, which these tests verify — along with full force correctness
under the minimum-image convention.
"""

import numpy as np
import pytest

from repro.core import (
    SimulationConfig,
    cutoff_config,
    run_cutoff,
    run_cutoff_virtual,
    run_simulation,
    team_blocks_spatial,
)
from repro.machines import GenericMachine, InstantMachine
from repro.physics import (
    ForceLaw,
    ParticleSet,
    euler_step,
    reference_forces,
    reference_pair_matrix,
    wrap_periodic,
)

from tests.conftest import assert_forces_close


class TestWrapPeriodic:
    def test_wraps_into_box(self):
        pos = np.array([[1.25, -0.25], [0.5, 2.0]])
        wrap_periodic(pos, 1.0)
        assert np.allclose(pos, [[0.25, 0.75], [0.5, 0.0]])

    def test_inside_untouched(self):
        pos = np.array([[0.3, 0.7]])
        wrap_periodic(pos, 1.0)
        assert np.allclose(pos, [[0.3, 0.7]])

    def test_invalid_box(self):
        with pytest.raises(ValueError):
            wrap_periodic(np.zeros((1, 1)), -1.0)


class TestMinimumImageForces:
    def test_pair_across_the_boundary(self):
        """Two particles near opposite walls interact through the wall."""
        law = ForceLaw(k=1.0, softening=0.0, box=1.0)
        pos = np.array([[0.05, 0.5], [0.95, 0.5]])
        ids = np.arange(2)
        from repro.physics import pairwise_forces

        f, _ = pairwise_forces(law, pos, pos, target_ids=ids, source_ids=ids)
        # Minimum-image separation is 0.1 through the wall: particle 0 is
        # pushed right (+x, away through the wall), particle 1 left.
        assert f[0, 0] > 0 and f[1, 0] < 0
        assert abs(f[0, 0]) == pytest.approx(1.0 / 0.1**2, rel=1e-12)

    def test_rcut_limited_by_half_box(self):
        with pytest.raises(ValueError):
            ForceLaw(rcut=0.6, box=1.0)

    def test_box_must_be_positive(self):
        with pytest.raises(ValueError):
            ForceLaw(box=0.0)

    def test_with_helpers_preserve_box(self):
        law = ForceLaw(box=2.0)
        assert law.with_rcut(0.5).box == 2.0
        assert law.with_box(None).box is None

    def test_pair_matrix_minimum_image(self):
        law = ForceLaw(rcut=0.2, box=1.0)
        ps = ParticleSet(
            np.array([[0.05], [0.95], [0.5]]), np.zeros((3, 1)), np.arange(3)
        )
        m = reference_pair_matrix(law, ps)
        assert m[0, 1] == 1 and m[1, 0] == 1  # through the wall
        assert m[0, 2] == 0 and m[1, 2] == 0


PC = [(8, 1), (8, 2), (16, 4), (12, 3)]


class TestPeriodicCutoffCorrectness:
    @pytest.mark.parametrize("p,c", PC)
    @pytest.mark.parametrize("dim,rcut", [(1, 0.2), (2, 0.3)])
    def test_forces_match_periodic_reference(self, p, c, dim, rcut):
        law = ForceLaw(k=1e-4, softening=1e-3)
        ps = ParticleSet.uniform_random(72, dim, 1.0, seed=31)
        ref = reference_forces(law.with_rcut(rcut).with_box(1.0), ps)
        out = run_cutoff(GenericMachine(nranks=p), ps, c, rcut=rcut,
                         box_length=1.0, law=law, periodic=True)
        assert_forces_close(out.forces, ref)

    @pytest.mark.parametrize("p,c", PC)
    def test_coverage_exactly_once(self, p, c):
        law = ForceLaw()
        n = 50
        ps = ParticleSet.uniform_random(n, 1, 1.0, seed=32)
        rcut = 0.25
        counter = np.zeros((n, n), dtype=np.int64)
        run_cutoff(InstantMachine(nranks=p), ps, c, rcut=rcut, box_length=1.0,
                   law=law, pair_counter=counter, periodic=True)
        expect = reference_pair_matrix(law.with_rcut(rcut).with_box(1.0), ps)
        assert (counter == expect).all()

    def test_periodic_sees_more_pairs_than_reflective(self):
        law = ForceLaw()
        n = 60
        ps = ParticleSet.uniform_random(n, 1, 1.0, seed=33)
        per = np.zeros((n, n), dtype=np.int64)
        ref = np.zeros((n, n), dtype=np.int64)
        run_cutoff(InstantMachine(nranks=8), ps, 2, rcut=0.25, box_length=1.0,
                   law=law, pair_counter=per, periodic=True)
        run_cutoff(InstantMachine(nranks=8), ps, 2, rcut=0.25, box_length=1.0,
                   law=law, pair_counter=ref, periodic=False)
        assert per.sum() > ref.sum()


class TestPeriodicLoadBalance:
    def test_imbalance_disappears(self):
        """Under PBC every team scans the same number of block pairs —
        the boundary imbalance the paper describes is gone."""
        p, n = 32, 2048
        per = run_cutoff_virtual(GenericMachine(nranks=p), n, 1, rcut=0.25,
                                 box_length=1.0, dim=1, periodic=True)
        pairs = {r.col: r.npairs for r in per.results}
        assert len(set(pairs.values())) == 1

        ref = run_cutoff_virtual(GenericMachine(nranks=p), n, 1, rcut=0.25,
                                 box_length=1.0, dim=1, periodic=False)
        ref_pairs = {r.col: r.npairs for r in ref.results}
        assert len(set(ref_pairs.values())) > 1

    def test_periodic_shift_has_no_imbalance_stalls(self):
        """With uniform work, the cutoff shifts stop absorbing waits."""
        from repro.machines import GenericTorus

        m = GenericTorus(nranks=32, cores_per_node=4)
        per = run_cutoff_virtual(m, 4096, 2, rcut=0.25, box_length=1.0,
                                 dim=1, periodic=True)
        ref = run_cutoff_virtual(m, 4096, 2, rcut=0.25, box_length=1.0,
                                 dim=1, periodic=False)
        assert per.report.max_time("shift") < ref.report.max_time("shift")


class TestPeriodicSimulation:
    def test_matches_serial_trajectory(self):
        law = ForceLaw(k=1e-5, softening=5e-3)
        rcut, L, dt, steps = 0.3, 1.0, 2e-3, 5
        ps = ParticleSet.uniform_random(60, 2, L, max_speed=0.05, seed=34)

        serial = ps.copy()
        slaw = law.with_rcut(rcut).with_box(L)
        for _ in range(steps):
            f = reference_forces(slaw, serial)
            euler_step(serial.pos, serial.vel, f, dt)
            wrap_periodic(serial.pos, L)
        serial = serial.sorted_by_id()

        cfg = cutoff_config(8, 2, rcut=rcut, box_length=L, dim=2,
                            periodic=True)
        scfg = SimulationConfig(cfg=cfg, law=law, dt=dt, nsteps=steps,
                                box_length=L, periodic=True)
        out = run_simulation(GenericMachine(nranks=8), scfg,
                             team_blocks_spatial(ps, cfg.geometry))
        assert np.abs(out.particles.pos - serial.pos).max() < 1e-10

    def test_periodicity_mismatch_rejected(self):
        law = ForceLaw()
        cfg = cutoff_config(8, 1, rcut=0.25, box_length=1.0, dim=1,
                            periodic=True)
        with pytest.raises(ValueError):
            SimulationConfig(cfg=cfg, law=law, dt=1e-3, nsteps=1,
                             box_length=1.0, periodic=False)

    def test_reassignment_wraps_at_walls(self):
        """A particle drifting past the wall re-assigns to the wrapped team."""
        law = ForceLaw(k=0.0)  # free streaming
        L = 1.0
        pos = np.array([[0.99], [0.5]])
        vel = np.array([[0.004], [0.0]])
        ps = ParticleSet(pos, vel, np.arange(2))
        cfg = cutoff_config(4, 1, rcut=0.3, box_length=L, dim=1,
                            periodic=True)
        scfg = SimulationConfig(cfg=cfg, law=law, dt=1.0, nsteps=5,
                                box_length=L, periodic=True)
        out = run_simulation(GenericMachine(nranks=4), scfg,
                             team_blocks_spatial(ps, cfg.geometry))
        x = out.particles.pos[0, 0]
        assert 0.0 <= x < 0.25  # wrapped into the first region

"""Velocity-Verlet integration in the distributed driver."""

import numpy as np
import pytest

from repro.core import (
    SimulationConfig,
    allpairs_config,
    cutoff_config,
    run_simulation,
    team_blocks_even,
    team_blocks_spatial,
)
from repro.machines import GenericMachine
from repro.physics import (
    ForceLaw,
    ParticleSet,
    drift,
    kick,
    kinetic_energy,
    potential_energy,
    reference_forces,
    reflect,
)


def serial_verlet(ps, law, dt, nsteps, box_length, rcut=None):
    ps = ps.copy()
    use = law if rcut is None else law.with_rcut(rcut)
    f = reference_forces(use, ps)
    for _ in range(nsteps):
        kick(ps.vel, f, dt / 2)
        drift(ps.pos, ps.vel, dt)
        reflect(ps.pos, ps.vel, box_length)
        f = reference_forces(use, ps)
        kick(ps.vel, f, dt / 2)
    return ps.sorted_by_id()


class TestVerletAllPairs:
    @pytest.mark.parametrize("p,c", [(4, 1), (8, 2), (12, 3)])
    def test_matches_serial_verlet(self, p, c, law):
        ps = ParticleSet.uniform_random(48, 2, 1.0, max_speed=0.05, seed=61)
        ref = serial_verlet(ps, law, dt=2e-3, nsteps=5, box_length=1.0)
        cfg = allpairs_config(p, c)
        scfg = SimulationConfig(cfg=cfg, law=law, dt=2e-3, nsteps=5,
                                box_length=1.0, integrator="verlet")
        out = run_simulation(GenericMachine(nranks=p), scfg,
                             team_blocks_even(ps, cfg.grid.nteams))
        assert np.abs(out.particles.pos - ref.pos).max() < 1e-10
        assert np.abs(out.particles.vel - ref.vel).max() < 1e-10

    def test_differs_from_euler(self, law):
        ps = ParticleSet.uniform_random(32, 2, 1.0, max_speed=0.05, seed=62)
        cfg = allpairs_config(8, 2)
        runs = {}
        for integ in ("euler", "verlet"):
            scfg = SimulationConfig(cfg=cfg, law=law, dt=5e-3, nsteps=4,
                                    box_length=1.0, integrator=integ)
            runs[integ] = run_simulation(
                GenericMachine(nranks=8), scfg,
                team_blocks_even(ps, cfg.grid.nteams)
            )
        assert not np.allclose(runs["euler"].particles.pos,
                               runs["verlet"].particles.pos)

    def test_unknown_integrator_rejected(self, law):
        cfg = allpairs_config(4, 1)
        with pytest.raises(ValueError, match="integrator"):
            SimulationConfig(cfg=cfg, law=law, dt=1e-3, nsteps=1,
                             box_length=1.0, integrator="leapfrog")


class TestVerletCutoff:
    def test_matches_serial_with_reassignment(self, law):
        rcut = 0.3
        ps = ParticleSet.uniform_random(60, 2, 1.0, max_speed=0.05, seed=63)
        ref = serial_verlet(ps, law, dt=2e-3, nsteps=4, box_length=1.0,
                            rcut=rcut)
        cfg = cutoff_config(8, 2, rcut=rcut, box_length=1.0, dim=2)
        scfg = SimulationConfig(cfg=cfg, law=law, dt=2e-3, nsteps=4,
                                box_length=1.0, integrator="verlet")
        out = run_simulation(GenericMachine(nranks=8), scfg,
                             team_blocks_spatial(ps, cfg.geometry))
        assert np.abs(out.particles.pos - ref.pos).max() < 1e-10

    def test_energy_conservation_better_than_euler(self):
        """Verlet's energy drift over a long run is far below Euler's."""
        law = ForceLaw(k=1e-5, softening=5e-3)
        ps = ParticleSet.uniform_random(48, 2, 1.0, max_speed=0.02, seed=64)
        cfg = allpairs_config(8, 2)
        lawc = law

        def drift_of(integ):
            scfg = SimulationConfig(cfg=cfg, law=law, dt=8e-3, nsteps=40,
                                    box_length=1.0, integrator=integ)
            out = run_simulation(GenericMachine(nranks=8), scfg,
                                 team_blocks_even(ps, cfg.grid.nteams))
            final = out.particles
            e0 = kinetic_energy(ps.vel) + potential_energy(lawc, ps.pos)
            e1 = kinetic_energy(final.vel) + potential_energy(lawc, final.pos)
            return abs(e1 - e0) / abs(e0)

        assert drift_of("verlet") < drift_of("euler")

"""The parallel executor's contract: order, purity, loud failures.

:mod:`repro.core.parallel` backs every harness ``--workers`` flag, so the
properties the harnesses rely on are pinned here directly: results come
back in task order (not completion order), ``workers=0`` is a plain
serial fallback, a worker exception surfaces as :class:`WorkerError`
naming the task index with the remote traceback, and
:func:`spawn_seeds` is a pure function of its inputs.
"""

import pytest

from repro.core.parallel import WorkerError, parallel_map, spawn_seeds


def _square(x):
    return x * x


def _sleep_inverse(task):
    """Later tasks finish first — exposes completion-order merging."""
    import time

    index, count = task
    time.sleep(0.02 * (count - index))
    return index


def _boom(x):
    if x == 2:
        raise ValueError(f"task payload {x} is cursed")
    return x


class TestSerialFallback:
    def test_workers_zero_is_a_list_comprehension(self):
        assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_serial_exceptions_propagate_natively(self):
        with pytest.raises(ValueError, match="cursed"):
            parallel_map(_boom, [0, 1, 2, 3])

    def test_empty_tasks(self):
        assert parallel_map(_square, [], workers=4) == []


class TestParallelSemantics:
    def test_results_in_task_order(self):
        count = 4
        tasks = [(i, count) for i in range(count)]
        assert parallel_map(_sleep_inverse, tasks, workers=4) == \
            list(range(count))

    def test_matches_serial_output(self):
        tasks = list(range(10))
        assert parallel_map(_square, tasks, workers=3) == \
            parallel_map(_square, tasks, workers=0)

    def test_worker_error_names_index_and_traceback(self):
        with pytest.raises(WorkerError) as err:
            parallel_map(_boom, [0, 1, 2, 3], workers=2)
        assert err.value.index == 2
        assert "cursed" in err.value.remote_traceback
        assert "task 2" in str(err.value)


class TestSpawnSeeds:
    def test_pure_function_of_inputs(self):
        assert spawn_seeds(7, 5) == spawn_seeds(7, 5)

    def test_distinct_across_children_and_parents(self):
        a = spawn_seeds(7, 8)
        b = spawn_seeds(8, 8)
        assert len(set(a)) == 8
        assert set(a).isdisjoint(b)

    def test_prefix_stability(self):
        # Growing the fleet must not reshuffle existing assignments.
        assert spawn_seeds(3, 4) == spawn_seeds(3, 8)[:4]

"""The parallel executor's contract: order, purity, loud failures.

:mod:`repro.core.parallel` backs every harness ``--workers`` flag, so the
properties the harnesses rely on are pinned here directly: results come
back in task order (not completion order), ``workers=0`` is a plain
serial fallback, a worker exception surfaces as :class:`WorkerError`
naming *every* failed task index with the remote tracebacks, and
:func:`spawn_seeds` is a pure function of its inputs.

The supervised-executor layer (PR 9) adds its own contract: a
:class:`RetryPolicy` with deterministic seeded backoff, per-task
timeouts that kill and replace hung workers, crash recovery when a
worker is SIGKILLed mid-task, and a replayable JSON quarantine for
tasks that fail every attempt.  The process-spawning tests here are
deliberately few (each spawn costs ~1 s with NumPy); the chaos parity
sweeps live in ``tests/integration`` and ``tools/host_chaos.py``.
"""

import json
import os
import signal

import pytest

from repro.core.parallel import (
    QUARANTINE_FORMAT,
    RetryPolicy,
    TaskOutcome,
    WorkerError,
    as_retry_policy,
    load_quarantine,
    parallel_map,
    run_supervised,
    spawn_seeds,
    write_quarantine,
)


def _square(x):
    return x * x


def _sleep_inverse(task):
    """Later tasks finish first — exposes completion-order merging."""
    import time

    index, count = task
    time.sleep(0.02 * (count - index))
    return index


def _boom(x):
    if x == 2:
        raise ValueError(f"task payload {x} is cursed")
    return x


def _boom_even(x):
    if x % 2 == 0:
        raise ValueError(f"task payload {x} is cursed")
    return x


def _poison(x):
    raise RuntimeError(f"poison task {x}: fails every attempt")


def _flaky(task):
    """Fails the first time each task runs, succeeds on the retry.

    The marker file makes the transience real across processes: attempt
    1 creates it and raises, attempt 2 sees it and returns.
    """
    index, marker_dir = task
    marker = os.path.join(marker_dir, f"ran-{index}")
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise RuntimeError(f"transient failure on task {index}")
    return index * 10


def _die_once(task):
    """SIGKILLs its own worker on the first attempt — a simulated OOM."""
    index, marker_dir = task
    marker = os.path.join(marker_dir, f"died-{index}")
    if index == 1 and not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return index + 100


def _hang_once(task):
    """Hangs forever on the first attempt — a simulated stuck worker."""
    import time

    index, marker_dir = task
    marker = os.path.join(marker_dir, f"hung-{index}")
    if index == 1 and not os.path.exists(marker):
        with open(marker, "w"):
            pass
        time.sleep(600.0)
    return index - 7


class TestSerialFallback:
    def test_workers_zero_is_a_list_comprehension(self):
        assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_serial_exceptions_propagate_natively(self):
        with pytest.raises(ValueError, match="cursed"):
            parallel_map(_boom, [0, 1, 2, 3])

    def test_empty_tasks(self):
        assert parallel_map(_square, [], workers=4) == []


class TestParallelSemantics:
    def test_results_in_task_order(self):
        count = 4
        tasks = [(i, count) for i in range(count)]
        assert parallel_map(_sleep_inverse, tasks, workers=4) == \
            list(range(count))

    def test_matches_serial_output(self):
        tasks = list(range(10))
        assert parallel_map(_square, tasks, workers=3) == \
            parallel_map(_square, tasks, workers=0)

    def test_worker_error_names_index_and_traceback(self):
        with pytest.raises(WorkerError) as err:
            parallel_map(_boom, [0, 1, 2, 3], workers=2)
        assert err.value.index == 2
        assert "cursed" in err.value.remote_traceback
        assert "task 2" in str(err.value)

    def test_worker_error_aggregates_every_failure(self):
        with pytest.raises(WorkerError) as err:
            parallel_map(_boom_even, [0, 1, 2, 3, 4], workers=2)
        assert err.value.indices == [0, 2, 4]
        assert err.value.index == 0  # first failure keeps the PR-7 field
        assert "3 tasks failed" in str(err.value)


class TestRetryPolicy:
    def test_first_attempt_never_waits(self):
        assert RetryPolicy(base_delay=5.0).delay(0, 1) == 0.0

    def test_delay_is_pure_and_decorrelated(self):
        p = RetryPolicy(base_delay=0.1, seed=3)
        assert p.delay(4, 2) == p.delay(4, 2)
        assert p.delay(4, 2) != p.delay(5, 2)

    def test_backoff_grows_exponentially(self):
        p = RetryPolicy(base_delay=0.1, backoff=2.0, jitter=0.0)
        assert p.delay(0, 2) == pytest.approx(0.1)
        assert p.delay(0, 3) == pytest.approx(0.2)
        assert p.delay(0, 4) == pytest.approx(0.4)

    def test_jitter_stays_within_bounds(self):
        p = RetryPolicy(base_delay=0.1, backoff=1.0, jitter=0.1)
        for i in range(20):
            assert 0.09 <= p.delay(i, 2) <= 0.11

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0}, {"base_delay": -1.0},
        {"backoff": 0.5}, {"jitter": 2.0},
    ])
    def test_bad_policies_rejected_up_front(self, kwargs):
        with pytest.raises(ValueError, match="bad RetryPolicy"):
            RetryPolicy(**kwargs)

    def test_as_retry_policy_normalizes(self):
        assert as_retry_policy(None).max_attempts == 1
        assert as_retry_policy(4).max_attempts == 4
        p = RetryPolicy(max_attempts=7)
        assert as_retry_policy(p) is p


class TestRunSupervisedSerial:
    """The retry machinery without any process spawns (workers=0)."""

    def test_transient_failures_recover_on_retry(self, tmp_path):
        tasks = [(i, str(tmp_path)) for i in range(3)]
        outcomes = run_supervised(
            _flaky, tasks, retry=RetryPolicy(max_attempts=2, base_delay=0.0))
        assert [o.status for o in outcomes] == ["ok"] * 3
        assert [o.value for o in outcomes] == [0, 10, 20]
        assert all(o.attempts == 2 for o in outcomes)

    def test_poison_tasks_fail_after_all_attempts(self):
        outcomes = run_supervised(
            _poison, [7], retry=RetryPolicy(max_attempts=3, base_delay=0.0))
        assert outcomes[0].status == "failed"
        assert outcomes[0].attempts == 3
        assert "poison task 7" in outcomes[0].error
        assert not outcomes[0].ok

    def test_never_raises_on_task_failure(self):
        outcomes = run_supervised(_boom, [0, 1, 2, 3])
        assert [o.status for o in outcomes] == ["ok", "ok", "failed", "ok"]

    def test_parallel_map_retry_keeps_plain_results(self, tmp_path):
        tasks = [(i, str(tmp_path)) for i in range(3)]
        got = parallel_map(_flaky, tasks,
                           retry=RetryPolicy(max_attempts=2, base_delay=0.0))
        assert got == [0, 10, 20]

    def test_parallel_map_collect_returns_outcomes(self):
        outcomes = parallel_map(_boom, [0, 1, 2], on_error="collect")
        assert all(isinstance(o, TaskOutcome) for o in outcomes)
        assert [o.ok for o in outcomes] == [True, True, False]

    def test_parallel_map_rejects_unknown_on_error(self):
        with pytest.raises(ValueError, match="on_error"):
            parallel_map(_square, [1], on_error="explode")

    def test_serial_retry_failures_raise_aggregated_worker_error(self):
        with pytest.raises(WorkerError) as err:
            parallel_map(_boom_even, [0, 1, 2], retry=2)
        assert err.value.indices == [0, 2]
        assert "cursed" in err.value.remote_traceback

    def test_legacy_single_failure_constructor(self):
        err = WorkerError(2, "a traceback")
        assert err.index == 2
        assert err.indices == [2]
        assert err.remote_traceback == "a traceback"
        assert "task 2" in str(err)


class TestCrashAndTimeoutRecovery:
    """A killed or hung worker must not hang or poison the sweep."""

    def test_sigkilled_worker_is_replaced_and_task_retried(self, tmp_path):
        tasks = [(i, str(tmp_path)) for i in range(3)]
        outcomes = run_supervised(
            _die_once, tasks, workers=2,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0))
        assert [o.value for o in outcomes] == [100, 101, 102]
        assert outcomes[1].attempts == 2  # the crash consumed an attempt

    def test_crash_without_retry_reports_crashed(self, tmp_path):
        tasks = [(i, str(tmp_path)) for i in range(2)]
        outcomes = run_supervised(_die_once, tasks, workers=2)
        assert outcomes[0].status == "ok"
        assert outcomes[1].status == "crashed"
        assert "worker died" in outcomes[1].error

    def test_hung_worker_is_killed_and_task_retried(self, tmp_path):
        tasks = [(i, str(tmp_path)) for i in range(3)]
        outcomes = run_supervised(
            _hang_once, tasks, workers=2, task_timeout=1.5,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0))
        assert [o.value for o in outcomes] == [-7, -6, -5]
        assert outcomes[1].attempts == 2


class TestQuarantine:
    def test_failed_tasks_land_in_replayable_artifact(self, tmp_path):
        path = str(tmp_path / "quarantine.json")
        outcomes = run_supervised(
            _boom, [0, 1, 2, 3], quarantine=path,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0))
        assert outcomes[2].quarantined
        assert not outcomes[0].quarantined
        entries = load_quarantine(path)
        assert [e["index"] for e in entries] == [2]
        assert entries[0]["task"] == 2
        assert entries[0]["attempts"] == 2
        assert "cursed" in entries[0]["error"]

    def test_no_artifact_when_nothing_failed(self, tmp_path):
        path = str(tmp_path / "quarantine.json")
        run_supervised(_square, [1, 2], quarantine=path)
        assert not os.path.exists(path)

    def test_load_rejects_non_quarantine_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="not a quarantine artifact"):
            load_quarantine(str(path))

    def test_unjsonable_tasks_fall_back_to_repr(self, tmp_path):
        path = str(tmp_path / "q.json")
        tasks = [{0, 1}]  # a set does not JSON-serialize
        outcomes = [TaskOutcome(index=0, status="failed", error="e",
                                attempts=1)]
        assert write_quarantine(path, tasks, outcomes) == path
        assert load_quarantine(path)[0]["task"] == repr({0, 1})
        assert json.load(open(path))["format"] == QUARANTINE_FORMAT


class TestSpawnSeeds:
    def test_pure_function_of_inputs(self):
        assert spawn_seeds(7, 5) == spawn_seeds(7, 5)

    def test_distinct_across_children_and_parents(self):
        a = spawn_seeds(7, 8)
        b = spawn_seeds(8, 8)
        assert len(set(a)) == 8
        assert set(a).isdisjoint(b)

    def test_prefix_stability(self):
        # Growing the fleet must not reshuffle existing assignments.
        assert spawn_seeds(3, 4) == spawn_seeds(3, 8)[:4]

"""Chrome Trace Event Format export of recorded engine timelines."""

import json

import pytest

from repro.core import RunSpec, run
from repro.machines import GenericMachine
from repro.metrics import chrome_trace, write_chrome_trace


@pytest.fixture(scope="module")
def traced():
    out = run(RunSpec(machine=GenericMachine(nranks=4), algorithm="allpairs",
                      n=16, seed=0, c=2,
                      engine_opts={"record_events": True}))
    return out.trace


class TestChromeTrace:
    def test_document_shape(self, traced):
        doc = chrome_trace(traced)
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert {row["ph"] for row in doc["traceEvents"]} == {"M", "X"}

    def test_metadata_names_process_and_every_rank(self, traced):
        doc = chrome_trace(traced, process_name="test run")
        meta = [r for r in doc["traceEvents"] if r["ph"] == "M"]
        byname = {}
        for r in meta:
            byname.setdefault(r["name"], []).append(r)
        assert byname["process_name"][0]["args"]["name"] == "test run"
        thread_names = {r["args"]["name"] for r in byname["thread_name"]}
        assert thread_names == {f"rank {r}" for r in range(4)}

    def test_slices_carry_phase_kind_and_virtual_microseconds(self, traced):
        doc = chrome_trace(traced)
        slices = [r for r in doc["traceEvents"] if r["ph"] == "X"]
        assert slices
        phases = {r["name"] for r in slices}
        assert {"bcast", "shift", "compute", "reduce"} <= phases
        for r in slices:
            assert r["tid"] in range(4)
            assert r["ts"] >= 0 and r["dur"] >= 0
            assert r["cat"] in ("compute", "wait", "xfer", "hwcoll", "fsync")
        # transfers expose their wire size for the viewer
        assert any("nbytes" in r["args"] for r in slices)

    def test_slices_sorted_by_start_time(self, traced):
        doc = chrome_trace(traced)
        ts = [r["ts"] for r in doc["traceEvents"] if r["ph"] == "X"]
        assert ts == sorted(ts)

    def test_write_is_valid_json(self, traced, tmp_path):
        path = tmp_path / "trace.json"
        returned = write_chrome_trace(path, traced)
        assert returned == str(path)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_deterministic(self, traced):
        assert chrome_trace(traced) == chrome_trace(list(traced))

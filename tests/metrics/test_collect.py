"""The run -> metric-schema projection, end to end through the pipeline."""

import pytest

from repro.core import RunSpec, run
from repro.machines import GenericMachine
from repro.metrics import MetricsRegistry, collect_run_metrics


@pytest.fixture(scope="module")
def profiled():
    """One all-pairs run with a registry attached (shared, read-only)."""
    metrics = MetricsRegistry()
    out = run(RunSpec(machine=GenericMachine(nranks=8), algorithm="allpairs",
                      n=64, seed=0, c=2, metrics=metrics))
    return out, metrics


class TestEngineSchema:
    def test_kernel_pairs_counts_every_interaction(self, profiled):
        _, metrics = profiled
        # all-pairs: every ordered (target, source) pair exactly once
        assert metrics.value("kernel.pairs") == 64 * 64

    def test_comm_totals_match_trace_report(self, profiled):
        out, metrics = profiled
        report = out.report
        for phase in ("bcast", "shift", "reduce"):
            total = sum(tr.phases[phase].messages_sent
                        for tr in report.traces if phase in tr.phases)
            assert metrics.value("comm.messages", phase=phase) == total
            assert (metrics.value("comm.max_messages", phase=phase)
                    == report.max_messages(phase))
            assert (metrics.value("comm.max_bytes", phase=phase)
                    == report.max_bytes(phase))

    def test_words_are_bytes_over_particle_size(self, profiled):
        _, metrics = profiled
        from repro.machines.base import PARTICLE_BYTES
        w = metrics.value("comm.words", phase="shift")
        assert w == metrics.value("comm.bytes", phase="shift") / PARTICLE_BYTES

    def test_critical_path_and_run_shape(self, profiled):
        out, metrics = profiled
        assert (metrics.value("comm.critical_messages")
                == out.report.critical_messages())
        assert (metrics.value("comm.critical_bytes")
                == out.report.critical_bytes())
        assert metrics.value("run.ranks") == 8
        assert metrics.value("run.nops") == out.run.nops
        assert metrics.value("run.elapsed_virtual_s") == out.run.elapsed
        assert metrics.value("run.wall_s") > 0

    def test_ops_by_kind(self, profiled):
        out, metrics = profiled
        kinds = metrics.values("engine.ops")
        assert {dict(k)["kind"] for k in kinds} >= {"compute", "isend",
                                                    "irecv", "wait"}
        # every posted isend has a matching irecv
        assert (metrics.value("engine.ops", kind="isend")
                == metrics.value("engine.ops", kind="irecv"))
        assert 0 < sum(m.value for m in kinds.values()) <= out.run.nops

    def test_rank_histograms_cover_every_rank(self, profiled):
        _, metrics = profiled
        assert metrics.get("rank.messages").count == 8
        assert metrics.get("rank.bytes").count == 8

    def test_no_fault_metrics_on_clean_run(self, profiled):
        _, metrics = profiled
        assert metrics.get("faults.retries") is None
        assert metrics.get("faults.deaths") is None


class TestCollectAfterTheFact:
    def test_matches_threaded_registry_where_reconstructible(self, profiled):
        out, metrics = profiled
        post = collect_run_metrics(out)
        # kernel.pairs, run.wall_s and the engine-internal op histogram
        # cannot be rebuilt from a finished Run; everything else must agree.
        skip = ("kernel.pairs", "run.wall_s", "engine.ops")
        threaded = {(m.name, tuple(sorted(m.labels.items()))): m.to_dict()
                    for m in metrics if m.name not in skip}
        posthoc = {(m.name, tuple(sorted(m.labels.items()))): m.to_dict()
                   for m in post}
        assert posthoc == threaded

    def test_accumulates_across_runs(self):
        metrics = MetricsRegistry()
        spec = RunSpec(machine=GenericMachine(nranks=4),
                       algorithm="particle_ring", n=16, seed=0)
        one = run(spec)
        collect_run_metrics(one, metrics)
        first = metrics.value("comm.messages", phase="ring")
        collect_run_metrics(one, metrics)
        assert metrics.value("comm.messages", phase="ring") == 2 * first


class TestMetricsOffByDefault:
    def test_spec_without_registry_records_nothing(self):
        out = run(RunSpec(machine=GenericMachine(nranks=4),
                          algorithm="allpairs", n=16, seed=0))
        assert out.spec.metrics is None

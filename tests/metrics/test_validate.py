"""The measured-vs-closed-form model-validation pass."""

import pytest

from repro.metrics import (
    MODEL_CASES,
    ModelCase,
    resolve_algorithm,
    validate_case,
    validate_models,
)
from repro.theory import LowerBound


class TestAliases:
    def test_paper_names_resolve_to_registry_names(self):
        assert resolve_algorithm("ca_allpairs") == "allpairs"
        assert resolve_algorithm("ca_cutoff") == "cutoff"
        # registry names pass through untouched
        assert resolve_algorithm("allpairs") == "allpairs"

    def test_unknown_name_raises_in_validate(self):
        with pytest.raises(KeyError, match="no model case"):
            validate_models(["no_such_algorithm"])


class TestModelCases:
    def test_acceptance_set_is_covered(self):
        # the algorithms the issue requires the CI gate to validate
        assert {"ca_allpairs", "ca_cutoff", "particle_ring",
                "particle_allgather"} <= set(MODEL_CASES)

    def test_ring_baseline_is_exact(self):
        # p-1 shifts of n/p particles: constants are 1, so the measured/
        # predicted ratios must be exactly 1 at every sweep point.
        cv = validate_case(MODEL_CASES["particle_ring"])
        assert cv.ok
        for pt in cv.points:
            assert pt.s_ratio == pytest.approx(1.0)
            assert pt.w_ratio == pytest.approx(1.0)

    def test_ca_allpairs_scaling(self):
        # Equation 5: S = p/c^2, W = n/c.  Band membership alone would
        # pass a wrong shape; the per-point checks pin the c-scaling.
        cv = validate_case(MODEL_CASES["ca_allpairs"])
        assert cv.ok, cv.failures
        # the sweep varies c at fixed p and n at fixed (p, c), so the
        # band + spread checks above really saw both scalings move
        assert len({pt.c for pt in cv.points}) > 1
        assert len({pt.n for pt in cv.points}) > 1

    def test_selected_subset_runs_only_those_cases(self):
        report = validate_models(["particle_ring"])
        assert [cv.case.name for cv in report.cases] == ["particle_ring"]
        assert report.ok
        assert "all models validated" in report.summary()


class TestToleranceBands:
    def _constant_case(self, s_pred, w_pred):
        base = MODEL_CASES["particle_ring"]
        return ModelCase(
            name="synthetic", algorithm=base.algorithm, phases=base.phases,
            predict=lambda n, p, c: LowerBound(messages=s_pred(n, p, c),
                                               words=w_pred(n, p, c)),
            sweep=base.sweep, band=base.band, spread=base.spread,
        )

    def test_band_violation_fails_loudly(self):
        # predict 100x fewer messages than the ring actually sends
        case = self._constant_case(lambda n, p, c: (p - 1) / 100.0,
                                   lambda n, p, c: float(n))
        cv = validate_case(case)
        assert not cv.ok
        assert any("outside band" in msg for msg in cv.failures)

    def test_wrong_shape_fails_spread_even_inside_band(self):
        # W truly scales as ~n; predicting n*p/8 keeps individual ratios
        # near the band but drifts across the sweep -> the spread catches it
        case = self._constant_case(lambda n, p, c: float(p - 1),
                                   lambda n, p, c: n * p / 8.0)
        cv = validate_case(case, band=(1e-9, 1e9))
        assert not cv.ok
        assert any("drifts across the sweep" in msg for msg in cv.failures)


@pytest.mark.slow
class TestFullSweep:
    def test_every_registered_model_case_validates(self):
        report = validate_models()
        assert report.ok, report.summary()

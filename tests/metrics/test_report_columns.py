"""TraceReport's machine-readable surface is a compatibility contract.

``phase_table()`` feeds the comparison harness, the CLI and the metrics
projection; renaming or dropping a column is a breaking change for every
consumer (including saved JSON), so the exact key set is pinned here.
"""

from repro.core import RunSpec, run
from repro.machines import GenericMachine

EXPECTED_COLUMNS = {"max_s", "mean_s", "max_messages", "max_bytes",
                    "retries", "redelivered"}


class TestPhaseTable:
    def test_every_cell_has_exactly_the_pinned_columns(self):
        out = run(RunSpec(machine=GenericMachine(nranks=8),
                          algorithm="allpairs", n=32, seed=0, c=2))
        table = out.report.phase_table()
        assert {"bcast", "shift", "compute", "reduce"} <= set(table)
        for phase, cells in table.items():
            assert set(cells) == EXPECTED_COLUMNS, phase

    def test_summary_header_names_every_column(self):
        out = run(RunSpec(machine=GenericMachine(nranks=4),
                          algorithm="particle_ring", n=16, seed=0))
        header = out.report.summary().splitlines()[0]
        for word in ("phase", "max(s)", "mean(s)", "maxmsgs", "maxbytes",
                     "retries", "redeliv"):
            assert word in header

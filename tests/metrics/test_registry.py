"""The metric primitives and the registry container."""

import json

import pytest

from repro.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("a.b")
        c.inc()
        c.inc(41)
        assert reg.value("a.b") == 42
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("x", phase="shift") is reg.counter("x",
                                                              phase="shift")
        assert reg.counter("x", phase="shift") is not reg.counter("x")

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("same.name")
        with pytest.raises(TypeError):
            reg.gauge("same.name")


class TestGauge:
    def test_set_and_max(self):
        g = MetricsRegistry().gauge("g")
        g.set(5.0)
        g.max(3.0)
        assert g.value == 5.0
        g.max(7.0)
        assert g.value == 7.0


class TestHistogram:
    def test_power_of_two_buckets(self):
        h = MetricsRegistry().histogram("h")
        for v in (1, 2, 3, 1000):
            h.observe(v)
        d = h.to_dict()
        assert d["count"] == 4
        assert d["total"] == 1006
        assert d["min"] == 1
        assert d["max"] == 1000
        assert h.mean == pytest.approx(1006 / 4)
        assert sum(d["buckets"].values()) == 4


class TestRegistry:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("comm.messages", phase="shift").inc(10)
        reg.gauge("run.wall_s").set(1.23)
        reg.gauge("run.ranks").set(16)
        reg.histogram("rank.bytes").observe(64)
        return reg

    def test_iteration_and_len(self):
        reg = self._populated()
        assert len(reg) == 4
        assert {m.name for m in reg} == {"comm.messages", "run.wall_s",
                                         "run.ranks", "rank.bytes"}

    def test_value_default_for_missing(self):
        assert MetricsRegistry().value("nope", default=-1) == -1

    def test_exclude_wall(self):
        reg = self._populated()
        names = {m["name"] for m in reg.to_dict(exclude_wall=True)["metrics"]}
        assert "run.wall_s" not in names
        assert "run.ranks" in names

    def test_json_roundtrip(self):
        doc = json.loads(self._populated().to_json())
        assert doc["schema"] == 1
        byname = {m["name"]: m for m in doc["metrics"]}
        assert byname["comm.messages"]["labels"] == {"phase": "shift"}
        assert byname["comm.messages"]["value"] == 10

    def test_merge(self):
        a, b = self._populated(), self._populated()
        a.merge(b)
        # counters add, gauges keep the max, histograms pool
        assert a.value("comm.messages", phase="shift") == 20
        assert a.value("run.wall_s") == 1.23
        assert a.get("rank.bytes").to_dict()["count"] == 2
        # the merged-from registry is untouched
        assert b.value("comm.messages", phase="shift") == 10

    def test_summary_mentions_every_metric(self):
        text = self._populated().summary()
        for name in ("comm.messages", "run.ranks", "rank.bytes"):
            assert name in text

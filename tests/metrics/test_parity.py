"""Metrics are part of the determinism contract.

The engine's fast path and the kernel scratch pool must be unobservable:
same spec -> the same registry, entry for entry, on either interpreter.
Wall-clock gauges are the one sanctioned difference, which is exactly
what ``to_dict(exclude_wall=True)`` exists to drop.
"""

import pytest

from repro.core import RunSpec, run
from repro.machines import GenericMachine, GenericTorus
from repro.metrics import MetricsRegistry


def _measure(algorithm, *, fast_path, **spec_kw):
    metrics = MetricsRegistry()
    run(RunSpec(machine=GenericTorus(nranks=16, cores_per_node=4),
                algorithm=algorithm, n=96, seed=7, metrics=metrics,
                engine_opts={"fast_path": fast_path}, **spec_kw))
    return metrics.to_dict(exclude_wall=True)


class TestFastPathParity:
    @pytest.mark.parametrize("algorithm,kw", [
        ("allpairs", {"c": 4}),
        ("cutoff", {"c": 2, "rcut": 0.3}),
        ("particle_ring", {}),
    ])
    def test_identical_metrics_either_interpreter(self, algorithm, kw):
        fast = _measure(algorithm, fast_path=True, **kw)
        slow = _measure(algorithm, fast_path=False, **kw)
        assert fast == slow

    def test_wall_gauge_is_present_but_excluded(self):
        metrics = MetricsRegistry()
        run(RunSpec(machine=GenericMachine(nranks=4), algorithm="allpairs",
                    n=16, seed=0, metrics=metrics))
        assert metrics.value("run.wall_s") > 0
        names = {m["name"]
                 for m in metrics.to_dict(exclude_wall=True)["metrics"]}
        assert "run.wall_s" not in names


class TestScratchParity:
    def test_kernel_pairs_identical_with_and_without_scratch(self):
        counts = []
        for scratch in (True, False):
            metrics = MetricsRegistry()
            run(RunSpec(machine=GenericMachine(nranks=8),
                        algorithm="symmetric", n=64, seed=3, c=2,
                        scratch=scratch, metrics=metrics))
            counts.append(metrics.value("kernel.pairs"))
        assert counts[0] == counts[1] > 0


class TestRepeatability:
    def test_same_spec_same_registry(self):
        assert (_measure("allpairs", fast_path=True, c=4)
                == _measure("allpairs", fast_path=True, c=4))

"""The ``python -m repro profile`` subcommand."""

import io
import json

from repro.cli import main


def run_cli(*argv):
    buf = io.StringIO()
    code = main(list(argv), out=buf)
    return code, buf.getvalue()


class TestProfile:
    def test_acceptance_invocation(self, tmp_path):
        code, text = run_cli("profile", "--algo", "ca_allpairs",
                             "--p", "8", "--c", "2", "--n", "64",
                             "--out-dir", str(tmp_path))
        assert code == 0

        metrics_doc = json.loads(
            (tmp_path / "profile_ca_allpairs.metrics.json").read_text())
        assert metrics_doc["schema"] == 1
        byname = {}
        for m in metrics_doc["metrics"]:
            byname.setdefault(m["name"], []).append(m)
        assert byname["kernel.pairs"][0]["value"] == 64 * 64
        assert "comm.max_messages" in byname

        trace_doc = json.loads(
            (tmp_path / "profile_ca_allpairs.trace.json").read_text())
        slices = [r for r in trace_doc["traceEvents"] if r["ph"] == "X"]
        assert {r["tid"] for r in slices} == set(range(8))

        assert "profile_ca_allpairs.metrics.json" in text
        assert "profile_ca_allpairs.trace.json" in text

    def test_cutoff_needs_rcut(self, tmp_path, capsys):
        code, _ = run_cli("profile", "--algo", "ca_cutoff",
                          "--p", "8", "--n", "32", "--out-dir", str(tmp_path))
        assert code == 2
        assert "--rcut" in capsys.readouterr().err

    def test_rcut_flows_through(self, tmp_path):
        code, _ = run_cli("profile", "--algo", "ca_cutoff", "--p", "8",
                          "--c", "2", "--n", "64", "--rcut", "0.3",
                          "--out-dir", str(tmp_path))
        assert code == 0
        assert (tmp_path / "profile_ca_cutoff.metrics.json").exists()

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machines import GenericMachine, GenericTorus, InstantMachine
from repro.physics import ForceLaw, ParticleSet


@pytest.fixture
def law():
    """Default repulsive inverse-square force law."""
    return ForceLaw(k=1e-4, softening=1e-3)


@pytest.fixture
def particles_2d():
    """A reproducible 2-D particle set in the unit box."""
    return ParticleSet.uniform_random(96, 2, 1.0, max_speed=0.1, seed=1234)


@pytest.fixture
def particles_1d():
    """A reproducible 1-D particle set in the unit box."""
    return ParticleSet.uniform_random(120, 1, 1.0, max_speed=0.1, seed=4321)


@pytest.fixture
def machine8():
    return GenericMachine(nranks=8)


@pytest.fixture
def machine16():
    return GenericMachine(nranks=16)


@pytest.fixture
def torus64():
    return GenericTorus(nranks=64, cores_per_node=4)


@pytest.fixture
def instant16():
    return InstantMachine(nranks=16)


def assert_forces_close(got: np.ndarray, want: np.ndarray, *, rtol=1e-9):
    """Force comparison helper with a scale-aware tolerance.

    Distributed runs sum contributions in a different order than the serial
    reference, so exact equality is not expected; agreement must be at
    floating-point-roundoff scale relative to the force magnitudes.
    """
    scale = max(float(np.abs(want).max()), 1e-30)
    assert np.abs(got - want).max() <= rtol * scale + 1e-15

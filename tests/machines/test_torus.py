"""Torus geometry: factorization, coordinates, hop distances."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machines import Torus, balanced_dims


class TestBalancedDims:
    def test_cube(self):
        assert balanced_dims(64, 3) == (4, 4, 4)

    def test_near_cube(self):
        assert balanced_dims(128, 3) == (8, 4, 4)

    def test_one_dim(self):
        assert balanced_dims(12, 1) == (12,)

    def test_two_dims(self):
        assert balanced_dims(24576, 2) == (192, 128)

    def test_prime(self):
        assert balanced_dims(7, 3) == (7, 1, 1)

    def test_one_node(self):
        assert balanced_dims(1, 3) == (1, 1, 1)

    @given(n=st.integers(1, 4096), d=st.integers(1, 4))
    def test_product_preserved(self, n, d):
        dims = balanced_dims(n, d)
        prod = 1
        for x in dims:
            prod *= x
        assert prod == n
        assert len(dims) == d
        assert list(dims) == sorted(dims, reverse=True)

    def test_invalid(self):
        with pytest.raises(ValueError):
            balanced_dims(0, 3)


class TestTorus:
    def test_coords_roundtrip(self):
        t = Torus((4, 3, 2))
        for node in range(t.nnodes):
            assert t.node_at(t.coords(node)) == node

    def test_hops_identity(self):
        t = Torus((4, 4, 4))
        assert t.hops(5, 5) == 0

    def test_hops_neighbors(self):
        t = Torus((4, 4))
        assert t.hops(0, 1) == 1
        assert t.hops(0, 4) == 1

    def test_wraparound(self):
        t = Torus((8,))
        assert t.hops(0, 7) == 1
        assert t.hops(0, 4) == 4
        assert t.hops(1, 6) == 3

    @given(dims=st.sampled_from([(4,), (3, 5), (4, 4, 2), (2, 3, 4)]),
           a=st.integers(0, 100), b=st.integers(0, 100))
    def test_hops_symmetric_and_bounded(self, dims, a, b):
        t = Torus(dims)
        a, b = a % t.nnodes, b % t.nnodes
        assert t.hops(a, b) == t.hops(b, a)
        assert 0 <= t.hops(a, b) <= t.max_hops

    @given(dims=st.sampled_from([(5,), (3, 4), (2, 2, 3)]),
           abc=st.tuples(st.integers(0, 59), st.integers(0, 59), st.integers(0, 59)))
    def test_triangle_inequality(self, dims, abc):
        t = Torus(dims)
        a, b, c = (x % t.nnodes for x in abc)
        assert t.hops(a, c) <= t.hops(a, b) + t.hops(b, c)

    def test_max_hops(self):
        assert Torus((8, 8, 8)).max_hops == 12
        assert Torus((5,)).max_hops == 2

    def test_mean_hops_small_case(self):
        # Ring of 4: distances from any node are [0, 1, 2, 1] -> mean 1.0.
        assert Torus((4,)).mean_hops() == pytest.approx(1.0)

    def test_fit(self):
        t = Torus.fit(1024, 3)
        assert t.nnodes == 1024
        assert t.dims == (16, 8, 8)

    def test_invalid_node(self):
        t = Torus((2, 2))
        with pytest.raises(ValueError):
            t.coords(4)
        with pytest.raises(ValueError):
            t.node_at((2, 0))

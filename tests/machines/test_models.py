"""Machine models: cost structure, topology awareness, platform presets."""

import pytest

from repro.machines import (
    GenericMachine,
    GenericTorus,
    Hopper,
    InstantMachine,
    Intrepid,
    MachineModel,
    TorusMachine,
)


class TestFlatMachine:
    def test_alpha_beta(self):
        m = GenericMachine(nranks=4, alpha=1e-6, beta=1e-9)
        assert m.p2p_time(0, 1, 0) == pytest.approx(1e-6)
        assert m.p2p_time(0, 1, 1000) == pytest.approx(1e-6 + 1e-6)

    def test_self_message_cheaper(self):
        m = GenericMachine(nranks=2)
        assert m.p2p_time(0, 0, 10_000) < m.p2p_time(0, 1, 10_000)

    def test_monotone_in_bytes(self):
        m = GenericMachine(nranks=2)
        assert m.p2p_time(0, 1, 100) < m.p2p_time(0, 1, 10_000)

    def test_interactions_time(self):
        m = GenericMachine(nranks=1, pair_time=2e-8)
        assert m.interactions_time(1000) == pytest.approx(2e-5)

    def test_no_hw_collectives(self):
        m = GenericMachine(nranks=2)
        assert not m.has_hw_collectives
        with pytest.raises(NotImplementedError):
            m.hw_collective_time("bcast", 8, 2)

    def test_invalid_nranks(self):
        with pytest.raises(ValueError):
            MachineModel(nranks=0)

    def test_describe(self):
        assert "generic" in GenericMachine(nranks=4).describe()


class TestTorusMachine:
    def test_same_node_uses_shared_memory_path(self):
        m = GenericTorus(nranks=16, cores_per_node=4)
        t_intra = m.p2p_time(0, 1, 1000)  # same node
        t_inter = m.p2p_time(0, 4, 1000)  # neighbor node
        assert t_intra < t_inter

    def test_hops_increase_cost(self):
        m = GenericTorus(nranks=64, cores_per_node=1, ndims=1)
        near = m.p2p_time(0, 1, 0)
        far = m.p2p_time(0, 32, 0)
        assert far > near

    def test_nic_sharing_scales_beta(self):
        m1 = GenericTorus(nranks=16, cores_per_node=1)
        m4 = GenericTorus(nranks=64, cores_per_node=4)
        # Per-byte costs at one hop differ by the core count sharing a NIC.
        b1 = m1.internode_beta(1)
        b4 = m4.internode_beta(1)
        assert b4 == pytest.approx(4 * b1)

    def test_route_congestion_kicks_in_for_long_routes(self):
        m = GenericTorus(nranks=64, cores_per_node=1)
        assert m.internode_beta(10) > m.internode_beta(1)

    def test_rank_distance(self):
        m = GenericTorus(nranks=16, cores_per_node=4)
        assert m.rank_distance_hops(0, 3) == 0  # same node
        assert m.rank_distance_hops(0, 4) >= 1

    def test_nranks_must_fill_nodes(self):
        with pytest.raises(ValueError):
            TorusMachine(nranks=10, cores_per_node=4)

    def test_describe_mentions_torus(self):
        assert "torus" in GenericTorus(nranks=8).describe()


class TestInstantMachine:
    def test_everything_free(self):
        m = InstantMachine(nranks=4)
        assert m.p2p_time(0, 1, 10**9) == 0.0
        assert m.interactions_time(10**9) == 0.0


class TestHopper:
    def test_shape(self):
        m = Hopper(24576)
        assert m.nranks == 24576
        assert m.cores_per_node == 24
        assert m.nnodes == 1024
        assert not m.has_hw_collectives

    def test_small_test_machine(self):
        m = Hopper(32, cores_per_node=4)
        assert m.nnodes == 8

    def test_node_alignment_enforced(self):
        with pytest.raises(ValueError):
            Hopper(100)

    def test_paper_sizes_construct(self):
        for p in (1536, 3072, 6144, 12288, 24576):
            assert Hopper(p).nranks == p


class TestIntrepid:
    def test_tree_network(self):
        m = Intrepid(8192)
        assert m.has_hw_collectives
        assert m.cores_per_node == 4

    def test_tree_disabled(self):
        assert not Intrepid(8192, tree=False).has_hw_collectives

    def test_tree_times(self):
        m = Intrepid(1024)
        t_b = m.hw_collective_time("bcast", 1000, 1024)
        t_ar = m.hw_collective_time("allreduce", 1000, 1024)
        t_ag = m.hw_collective_time("allgather", 1000, 1024)
        assert t_b < t_ar < t_ag  # volume through the root grows

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            Intrepid(16, cores_per_node=4).hw_collective_time("scan", 8, 16)

    def test_slower_core_than_hopper(self):
        assert Intrepid(24).pair_time > Hopper(24).pair_time

    def test_paper_sizes_construct(self):
        for p in (2048, 4096, 8192, 16384, 32768):
            assert Intrepid(p).nranks == p

"""Command-line interface."""

import io

import pytest

from repro.cli import build_parser, main, parse_faults


def run_cli(*argv):
    buf = io.StringIO()
    code = main(list(argv), out=buf)
    return code, buf.getvalue()


class TestParseFaults:
    def test_events_and_seed(self):
        sched = parse_faults("kill:3#5,drop:0>1:2,corrupt:2>3,seed:7")
        assert sched.seed == 7
        kinds = [type(e).__name__ for e in sched.events]
        assert kinds == ["KillRank", "DropTransfer", "CorruptTransfer"]

    def test_random_model_tokens(self):
        sched = parse_faults("drop_prob:0.02,delay_prob:0.05,"
                             "corrupt_prob:0.01,seed:3")
        assert sched.drop_prob == 0.02
        assert sched.delay_prob == 0.05
        assert sched.corrupt_prob == 0.01

    def test_hardening_tokens(self):
        sched = parse_faults("checksum:on,backoff:2,retries:5")
        assert sched.checksum is True
        assert sched.retry_backoff == 2.0
        assert sched.max_retries == 5
        assert parse_faults("checksum:off").checksum is False

    def test_bad_flag_rejected(self):
        with pytest.raises(ValueError, match="on/off"):
            parse_faults("checksum:maybe")

    def test_unknown_token_rejected(self):
        with pytest.raises(ValueError):
            parse_faults("explode:9")

    def test_malformed_channel_rejected(self):
        with pytest.raises(ValueError, match="SRC>DST"):
            parse_faults("drop:01")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_all_commands(self):
        p = build_parser()
        assert p.parse_args(["figures", "2a"]).command == "figures"
        assert p.parse_args(["validate", "2a"]).ranks == 64
        assert p.parse_args(["tune", "--machine", "hopper"]).machine == "hopper"
        args = p.parse_args(["simulate", "-c", "4", "--periodic"])
        assert args.replication == 4 and args.periodic
        assert p.parse_args(["algorithms"]).command == "algorithms"
        args = p.parse_args(["compare", "--algorithms", "allpairs,spatial"])
        assert args.command == "compare"
        assert args.algorithms == "allpairs,spatial"

    def test_resilience_flags_on_every_fleet_command(self):
        p = build_parser()
        for command in ("compare", "soak", "schedfuzz", "sweep"):
            args = p.parse_args([command, "--retry", "2",
                                 "--task-timeout", "30", "--cache", "cdir"])
            assert args.retry == 2
            assert args.task_timeout == 30.0
            assert args.cache == "cdir"
        args = p.parse_args(["sweep", "--ranks", "4,16", "--cs", "1,2",
                             "--expect-cached", "--quarantine", "q.json"])
        assert args.ranks == "4,16" and args.expect_cached
        assert args.quarantine == "q.json"

    def test_retry_flag_becomes_a_policy(self):
        from repro.cli import _retry_policy
        from repro.core.parallel import RetryPolicy

        p = build_parser()
        assert _retry_policy(p.parse_args(["soak"])) is None
        policy = _retry_policy(p.parse_args(
            ["soak", "--retry", "3", "--retry-delay", "0.2"]))
        assert isinstance(policy, RetryPolicy)
        # --retry N means "N retries after the first attempt"
        assert policy.max_attempts == 4
        assert policy.base_delay == 0.2


class TestFigures:
    def test_single_panel(self):
        code, out = run_cli("figures", "2a")
        assert code == 0
        assert "Figure 2a" in out
        assert "best total" in out

    def test_multiple_panels(self):
        code, out = run_cli("figures", "3a", "7c")
        assert code == 0
        assert "Figure 3a" in out and "Figure 7c" in out

    def test_unknown_panel(self):
        code, _ = run_cli("figures", "9z")
        assert code == 2


class TestValidate:
    def test_runs_event_simulation(self):
        code, out = run_cli("validate", "2a", "--ranks", "16",
                            "--particles", "512", "--cs", "1,2")
        assert code == 0
        assert "event simulation" in out
        assert "c=2" in out

    def test_unknown_figure(self):
        code, _ = run_cli("validate", "nope")
        assert code == 2


class TestTune:
    def test_allpairs(self):
        code, out = run_cli("tune", "--ranks", "16", "--particles", "512")
        assert code == 0
        assert "chosen replication factor" in out

    def test_cutoff(self):
        code, out = run_cli("tune", "--ranks", "16", "--particles", "512",
                            "--rcut", "0.25", "--dim", "1")
        assert code == 0
        assert "chosen replication factor" in out

    def test_hopper_machine(self):
        code, out = run_cli("tune", "--machine", "hopper", "--ranks", "48",
                            "--particles", "512")
        assert code == 0
        assert "hopper" in out


class TestAlgorithms:
    def test_lists_registry(self):
        code, out = run_cli("algorithms")
        assert code == 0
        for name in ("allpairs", "cutoff_virtual", "midpoint", "symmetric"):
            assert name in out
        assert "functional" in out and "modeled" in out
        assert "kills" in out and "transient" in out


class TestCompare:
    def test_default_functional_set(self):
        code, out = run_cli("compare", "--ranks", "16", "--particles", "48",
                            "-c", "2", "--rcut", "0.3")
        assert code == 0
        # All eight functional algorithms ran (square p, rcut given).
        for name in ("allpairs", "cutoff", "midpoint", "spatial",
                     "symmetric", "particle_ring", "particle_allgather",
                     "force_decomposition"):
            assert name in out
        assert "skipped" not in out
        assert "phase breakdown" in out

    def test_subset_and_skips(self):
        code, out = run_cli("compare", "--ranks", "8", "--particles", "32",
                            "-c", "1",
                            "--algorithms", "allpairs,spatial,"
                                            "force_decomposition")
        assert code == 0
        # No rcut -> spatial skipped; p=8 not square -> force_decomposition
        # skipped; allpairs still runs.
        assert "allpairs" in out
        assert "skipped: needs a cutoff radius" in out
        assert "skipped: needs a square rank count" in out

    def test_with_transient_faults(self):
        code, out = run_cli("compare", "--ranks", "8", "--particles", "32",
                            "-c", "1", "--algorithms",
                            "allpairs,particle_ring",
                            "--faults", "drop:0>1,seed:7")
        assert code == 0
        assert "allpairs" in out and "particle_ring" in out


class TestSimulate:
    def test_allpairs_simulation(self):
        code, out = run_cli("simulate", "--ranks", "8", "-c", "2",
                            "--particles", "48", "--steps", "2")
        assert code == 0
        assert "energy drift" in out

    def test_cutoff_periodic_verlet(self):
        code, out = run_cli("simulate", "--ranks", "8", "-c", "1",
                            "--particles", "48", "--steps", "2",
                            "--rcut", "0.3", "--periodic",
                            "--integrator", "verlet")
        assert code == 0
        assert "simulated machine time" in out

    def test_checkpoint_and_resume_roundtrip(self, tmp_path):
        base = ("simulate", "--ranks", "8", "-c", "2", "--particles", "32",
                "--steps", "3")
        code, out = run_cli(*base, "--checkpoint-dir", str(tmp_path))
        assert code == 0
        assert "checkpoint after step 1" in out
        ckpt = sorted(tmp_path.glob("checkpoint-*.npz"))[0]
        code, out = run_cli(*base, "--resume-from", str(ckpt))
        assert code == 0
        assert f"resumed from {ckpt}" in out


class TestSoak:
    def test_smoke_campaign(self):
        code, out = run_cli("soak", "--trials", "1", "--seed", "0")
        assert code == 0
        assert "soak seed=0: 1 trials" in out

    def test_no_kills_flag(self):
        code, out = run_cli("soak", "--trials", "1", "--seed", "1",
                            "--no-kills")
        assert code == 0
        assert "deaths=0" in out

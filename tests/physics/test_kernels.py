"""Interaction kernels (real and virtual) behind the CA algorithms."""

import numpy as np
import pytest

from repro.physics import (
    ForceLaw,
    HomeBlock,
    ParticleSet,
    RealKernel,
    VirtualBlock,
    VirtualKernel,
)
from repro.physics.kernels import VirtualForces


class TestRealKernel:
    def _kernel(self):
        return RealKernel(law=ForceLaw(k=1e-4, softening=1e-3))

    def test_home_of_wraps_particle_set(self):
        k = self._kernel()
        ps = ParticleSet.uniform_random(6, 2, 1.0, seed=0)
        home = k.home_of(ps)
        assert isinstance(home, HomeBlock)
        assert (home.forces == 0).all()

    def test_home_of_accepts_home_block(self):
        k = self._kernel()
        ps = ParticleSet.uniform_random(6, 2, 1.0, seed=0)
        home = k.home_of(HomeBlock(particles=ps))
        assert home.particles is ps

    def test_each_member_gets_private_forces(self):
        k = self._kernel()
        ps = ParticleSet.uniform_random(4, 2, 1.0, seed=1)
        h1, h2 = k.home_of(ps), k.home_of(ps)
        h1.forces += 1
        assert (h2.forces == 0).all()

    def test_travel_is_zero_copy_and_immutable(self):
        # Travel blocks share the home arrays (no copies on the hot path)
        # but are locked read-only, so a rank that tried to mutate a
        # visiting block faults instead of silently corrupting the team.
        k = self._kernel()
        home = k.home_of(ParticleSet.uniform_random(4, 2, 1.0, seed=2))
        tb = k.travel_of(home, team=7)
        assert tb.team == 7
        assert np.shares_memory(tb.pos, home.particles.pos)
        assert np.shares_memory(tb.ids, home.particles.ids)
        with pytest.raises(ValueError):
            tb.pos[:] = -1
        assert (home.particles.pos != -1).any()
        # The home arrays themselves stay writable for the integrator.
        assert home.particles.pos.flags.writeable

    def test_interact_accumulates_and_counts(self):
        k = self._kernel()
        ps = ParticleSet.uniform_random(5, 2, 1.0, seed=3)
        home = k.home_of(ps)
        tb = k.travel_of(home, team=0)
        npairs = k.interact(home, tb)
        assert npairs == 25
        assert np.abs(home.forces).max() > 0

    def test_reduce_and_install(self):
        k = self._kernel()
        ps = ParticleSet.uniform_random(3, 2, 1.0, seed=4)
        home = k.home_of(ps)
        a = np.ones_like(home.forces)
        b = 2 * np.ones_like(home.forces)
        combined = k.reduce_op(a, b)
        assert np.allclose(combined, 3.0)
        k.install_forces(home, combined)
        assert np.allclose(home.forces, 3.0)

    def test_install_none_is_noop(self):
        k = self._kernel()
        home = k.home_of(ParticleSet.uniform_random(3, 2, 1.0))
        before = home.forces
        k.install_forces(home, None)
        assert home.forces is before


class TestVirtualKernel:
    def test_home_and_travel(self):
        k = VirtualKernel(dim=2)
        home = k.home_of(VirtualBlock(count=10, team=4))
        assert home.count == 10 and home.team == 4
        tb = k.travel_of(home, team=2)
        assert tb.count == 10 and tb.team == 2

    def test_interact_counts_pairs(self):
        k = VirtualKernel(dim=2)
        assert k.interact(VirtualBlock(8), VirtualBlock(5)) == 40

    def test_forces_payload_wire_size(self):
        k = VirtualKernel(dim=3)
        payload = k.forces_payload(VirtualBlock(count=10))
        assert isinstance(payload, VirtualForces)
        assert payload.wire_nbytes == 10 * 3 * 8

    def test_reduce_requires_matching_counts(self):
        k = VirtualKernel()
        a, b = VirtualForces(5, 2), VirtualForces(5, 2)
        assert k.reduce_op(a, b) is a
        with pytest.raises(ValueError):
            k.reduce_op(VirtualForces(5, 2), VirtualForces(6, 2))

    def test_install_is_noop(self):
        k = VirtualKernel()
        assert k.install_forces(VirtualBlock(3), None) is None

"""Spatial team decomposition geometry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physics import TeamGeometry, team_of_positions


class TestTeamGeometry:
    def test_basic_properties(self):
        g = TeamGeometry(2.0, (4, 2))
        assert g.dim == 2 and g.nteams == 8
        assert g.cell_widths == (0.5, 1.0)

    def test_multi_index_roundtrip(self):
        g = TeamGeometry(1.0, (3, 4, 2))
        for t in range(g.nteams):
            assert g.linear_index(g.multi_index(t)) == t

    def test_region_bounds(self):
        g = TeamGeometry(1.0, (2, 2))
        lo, hi = g.region_bounds(3)  # multi-index (1, 1)
        assert np.allclose(lo, [0.5, 0.5]) and np.allclose(hi, [1.0, 1.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            TeamGeometry(0.0, (2,))
        with pytest.raises(ValueError):
            TeamGeometry(1.0, ())
        with pytest.raises(ValueError):
            TeamGeometry(1.0, (2, 0))


class TestSpannedCells:
    def test_quarter_box(self):
        g = TeamGeometry(1.0, (8,))
        assert g.spanned_cells(0.25) == (2,)

    def test_non_integral_rounds_up(self):
        g = TeamGeometry(1.0, (8,))
        assert g.spanned_cells(0.26) == (3,)

    def test_per_dimension(self):
        g = TeamGeometry(1.0, (8, 4))
        assert g.spanned_cells(0.25) == (2, 1)

    def test_tiny_cutoff(self):
        g = TeamGeometry(1.0, (4,))
        assert g.spanned_cells(0.01) == (1,)


class TestTeamDistance:
    def test_adjacent_always_ok(self):
        g = TeamGeometry(1.0, (8,))
        assert g.team_distance_ok(2, 3, 0.01)

    def test_same_team_ok(self):
        g = TeamGeometry(1.0, (8,))
        assert g.team_distance_ok(5, 5, 0.01)

    def test_far_apart_not_ok(self):
        g = TeamGeometry(1.0, (8,))
        assert not g.team_distance_ok(0, 4, 0.25)

    def test_gap_exactly_cutoff(self):
        g = TeamGeometry(1.0, (4,))
        # Teams 0 and 2: gap is one cell = 0.25.
        assert g.team_distance_ok(0, 2, 0.25)
        assert not g.team_distance_ok(0, 2, 0.2)

    def test_diagonal_2d(self):
        g = TeamGeometry(1.0, (4, 4))
        a = g.linear_index((0, 0))
        b = g.linear_index((2, 2))
        # Gap is (0.25, 0.25) -> distance ~0.354.
        assert g.team_distance_ok(a, b, 0.36)
        assert not g.team_distance_ok(a, b, 0.35)

    def test_symmetric(self):
        g = TeamGeometry(1.0, (5, 3))
        for a in range(g.nteams):
            for b in range(g.nteams):
                assert g.team_distance_ok(a, b, 0.3) == g.team_distance_ok(b, a, 0.3)


class TestTeamOfPositions:
    def test_basic_binning(self):
        g = TeamGeometry(1.0, (2, 2))
        pos = np.array([[0.1, 0.1], [0.1, 0.9], [0.9, 0.1], [0.9, 0.9]])
        assert list(team_of_positions(pos, g)) == [0, 1, 2, 3]

    def test_upper_wall_belongs_to_last_cell(self):
        g = TeamGeometry(1.0, (4,))
        assert team_of_positions(np.array([[1.0]]), g)[0] == 3

    def test_1d(self):
        g = TeamGeometry(2.0, (4,))
        t = team_of_positions(np.array([[0.1], [0.6], [1.1], [1.9]]), g)
        assert list(t) == [0, 1, 2, 3]

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 1000),
           dims=st.sampled_from([(4,), (2, 3), (3, 3)]))
    def test_positions_inside_their_region(self, seed, dims):
        g = TeamGeometry(1.0, dims)
        rng = np.random.default_rng(seed)
        pos = rng.random((50, len(dims)))
        teams = team_of_positions(pos, g)
        for i in range(50):
            lo, hi = g.region_bounds(int(teams[i]))
            assert (pos[i] >= lo - 1e-12).all() and (pos[i] <= hi + 1e-12).all()

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_binning_is_partition(self, seed):
        g = TeamGeometry(1.0, (3, 2))
        rng = np.random.default_rng(seed)
        pos = rng.random((40, 2))
        teams = team_of_positions(pos, g)
        assert ((teams >= 0) & (teams < g.nteams)).all()

"""Reflective boundary conditions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physics import reflect


class TestReflect:
    def test_inside_untouched(self):
        pos = np.array([[0.3, 0.7]])
        vel = np.array([[1.0, -1.0]])
        reflect(pos, vel, 1.0)
        assert np.allclose(pos, [[0.3, 0.7]])
        assert np.allclose(vel, [[1.0, -1.0]])

    def test_single_crossing_flips_velocity(self):
        pos = np.array([[1.2]])
        vel = np.array([[2.0]])
        reflect(pos, vel, 1.0)
        assert pos[0, 0] == pytest.approx(0.8)
        assert vel[0, 0] == -2.0

    def test_double_crossing_restores_velocity(self):
        pos = np.array([[2.3]])
        vel = np.array([[2.0]])
        reflect(pos, vel, 1.0)
        assert pos[0, 0] == pytest.approx(0.3)
        assert vel[0, 0] == 2.0

    def test_negative_positions(self):
        pos = np.array([[-0.25]])
        vel = np.array([[-1.0]])
        reflect(pos, vel, 1.0)
        assert pos[0, 0] == pytest.approx(0.25)
        assert vel[0, 0] == 1.0

    def test_componentwise_independence(self):
        pos = np.array([[1.5, 0.5]])
        vel = np.array([[1.0, 1.0]])
        reflect(pos, vel, 1.0)
        assert vel[0, 0] == -1.0 and vel[0, 1] == 1.0

    def test_exactly_on_wall(self):
        pos = np.array([[1.0, 0.0]])
        vel = np.array([[0.5, -0.5]])
        reflect(pos, vel, 1.0)
        assert pos[0, 0] == pytest.approx(1.0)
        assert pos[0, 1] == pytest.approx(0.0)

    def test_invalid_box(self):
        with pytest.raises(ValueError):
            reflect(np.zeros((1, 1)), np.zeros((1, 1)), 0.0)

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10_000), L=st.floats(0.5, 10.0))
    def test_invariants(self, seed, L):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(-3 * L, 4 * L, size=(20, 2))
        vel = rng.normal(size=(20, 2))
        speed_before = np.abs(vel).copy()
        reflect(pos, vel, L)
        # Positions folded into the box.
        assert (pos >= 0).all() and (pos <= L).all()
        # Reflection preserves component-wise speed.
        assert np.allclose(np.abs(vel), speed_before)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_idempotent_once_inside(self, seed):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(-2, 3, size=(10, 2))
        vel = rng.normal(size=(10, 2))
        reflect(pos, vel, 1.0)
        p2, v2 = pos.copy(), vel.copy()
        reflect(p2, v2, 1.0)
        assert np.allclose(p2, pos) and np.allclose(v2, vel)

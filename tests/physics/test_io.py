"""Snapshot and checkpoint I/O: fidelity, integrity checks, atomicity."""

import json
import os

import numpy as np
import pytest

from repro.physics.io import (
    Checkpoint,
    CheckpointError,
    SnapshotError,
    load_checkpoint,
    load_particles,
    save_checkpoint,
    save_particles,
)
from repro.physics.particles import ParticleSet


def particles(n=24, dim=2, seed=3):
    return ParticleSet.uniform_random(n, dim, 1.0, max_speed=0.1, seed=seed)


class TestSnapshotRoundtrip:
    def test_exact_roundtrip_with_dtypes(self, tmp_path):
        ps = particles()
        path = save_particles(tmp_path / "snap.npz", ps)
        back = load_particles(path)
        assert np.array_equal(back.pos, ps.pos)
        assert np.array_equal(back.vel, ps.vel)
        assert np.array_equal(back.ids, ps.ids)
        assert back.pos.dtype == np.float64
        assert back.vel.dtype == np.float64
        assert back.ids.dtype == np.int64

    def test_npz_suffix_appended(self, tmp_path):
        path = save_particles(tmp_path / "snap", particles())
        assert path.endswith(".npz") and os.path.exists(path)

    def test_returned_path_is_the_file_on_disk(self, tmp_path):
        target = tmp_path / "state.npz"
        assert save_particles(target, particles()) == str(target)

    def test_version1_files_still_load(self, tmp_path):
        ps = particles()
        path = tmp_path / "v1.npz"
        np.savez(path, pos=ps.pos, vel=ps.vel, ids=ps.ids,
                 format_version=np.int64(1))
        back = load_particles(path)
        assert np.array_equal(back.pos, ps.pos)


class TestSnapshotRejection:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="does not exist"):
            load_particles(tmp_path / "nope.npz")

    def test_truncated_file(self, tmp_path):
        path = save_particles(tmp_path / "snap.npz", particles())
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        with pytest.raises(SnapshotError):
            load_particles(path)

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not an npz container at all")
        with pytest.raises(SnapshotError, match="unreadable"):
            load_particles(path)

    def test_checksum_mismatch(self, tmp_path):
        ps = particles()
        # Craft a v2 snapshot whose stored CRC disagrees with the array.
        checksums = {"pos": 1, "vel": 2, "ids": 3}
        path = tmp_path / "bad.npz"
        np.savez(path, pos=ps.pos, vel=ps.vel, ids=ps.ids,
                 format_version=np.int64(2),
                 checksums=np.array(json.dumps(checksums)))
        with pytest.raises(SnapshotError, match="checksum mismatch"):
            load_particles(path)

    def test_missing_array(self, tmp_path):
        ps = particles()
        path = tmp_path / "partial.npz"
        np.savez(path, pos=ps.pos, ids=ps.ids, format_version=np.int64(1))
        with pytest.raises(SnapshotError, match="vel"):
            load_particles(path)

    def test_wrong_dtype_refused(self, tmp_path):
        ps = particles()
        path = tmp_path / "cast.npz"
        np.savez(path, pos=ps.pos.astype(np.float32), vel=ps.vel, ids=ps.ids,
                 format_version=np.int64(1))
        with pytest.raises(SnapshotError, match="refusing to cast"):
            load_particles(path)

    def test_unsupported_version(self, tmp_path):
        ps = particles()
        path = tmp_path / "future.npz"
        np.savez(path, pos=ps.pos, vel=ps.vel, ids=ps.ids,
                 format_version=np.int64(99))
        with pytest.raises(SnapshotError, match="unsupported snapshot version"):
            load_particles(path)


class TestAtomicity:
    def test_no_temporary_left_behind(self, tmp_path):
        save_particles(tmp_path / "snap.npz", particles())
        assert not list(tmp_path.glob("*.tmp"))

    def test_failed_write_preserves_previous_file(self, tmp_path, monkeypatch):
        ps_old = particles(seed=1)
        path = save_particles(tmp_path / "snap.npz", ps_old)

        def boom(fh, **arrays):
            fh.write(b"half-written garbage")
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez_compressed", boom)
        with pytest.raises(OSError):
            save_particles(path, particles(seed=2))
        monkeypatch.undo()
        back = load_particles(path)  # the old file is intact
        assert np.array_equal(back.pos, ps_old.pos)
        assert not list(tmp_path.glob("*.tmp"))


class TestCheckpointRoundtrip:
    def _ckpt(self, with_forces=True):
        blocks = [particles(n=8, seed=s) for s in (1, 2, 3)]
        forces = ([np.full((8, 2), float(s)) for s in (1, 2, 3)]
                  if with_forces else None)
        return Checkpoint(step=4, time=4e-3, fingerprint="fp;v1",
                          blocks=blocks, forces=forces,
                          rng_state={"kind": "none"})

    def test_roundtrip_with_forces(self, tmp_path):
        ckpt = self._ckpt()
        path = save_checkpoint(tmp_path / "ck.npz", ckpt)
        back = load_checkpoint(path)
        assert back.step == 4 and back.time == 4e-3
        assert back.fingerprint == "fp;v1"
        assert back.rng_state == {"kind": "none"}
        assert len(back.blocks) == 3 and len(back.forces) == 3
        for a, b in zip(back.blocks, ckpt.blocks):
            assert np.array_equal(a.pos, b.pos)
            assert np.array_equal(a.vel, b.vel)
            assert np.array_equal(a.ids, b.ids)
        for a, b in zip(back.forces, ckpt.forces):
            assert np.array_equal(a, b)

    def test_roundtrip_without_forces(self, tmp_path):
        path = save_checkpoint(tmp_path / "ck.npz", self._ckpt(False))
        assert load_checkpoint(path).forces is None

    def test_fingerprint_guard(self, tmp_path):
        path = save_checkpoint(tmp_path / "ck.npz", self._ckpt())
        assert load_checkpoint(path, expect_fingerprint="fp;v1").step == 4
        with pytest.raises(CheckpointError, match="different .*configuration"):
            load_checkpoint(path, expect_fingerprint="fp;v2")

    def test_mismatched_forces_count_refused(self, tmp_path):
        ckpt = self._ckpt()
        ckpt.forces = ckpt.forces[:2]
        with pytest.raises(CheckpointError, match="force arrays"):
            save_checkpoint(tmp_path / "ck.npz", ckpt)

    def test_corrupt_checkpoint_rejected(self, tmp_path):
        path = save_checkpoint(tmp_path / "ck.npz", self._ckpt())
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_missing_checkpoint(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load_checkpoint(tmp_path / "nope.npz")

    def test_checkpoint_error_is_snapshot_error(self):
        assert issubclass(CheckpointError, SnapshotError)

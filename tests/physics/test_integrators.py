"""Time integrators."""

import numpy as np
import pytest

from repro.physics import (
    ForceLaw,
    drift,
    euler_step,
    kick,
    kinetic_energy,
    pairwise_forces,
    potential_energy,
    reflect,
)


class TestKickDrift:
    def test_kick(self):
        vel = np.zeros((2, 2))
        forces = np.array([[1.0, 0.0], [0.0, -2.0]])
        kick(vel, forces, dt=0.5, mass=2.0)
        assert np.allclose(vel, [[0.25, 0.0], [0.0, -0.5]])

    def test_drift(self):
        pos = np.zeros((1, 2))
        vel = np.array([[3.0, -1.0]])
        drift(pos, vel, 0.1)
        assert np.allclose(pos, [[0.3, -0.1]])

    def test_euler_is_kick_then_drift(self):
        pos = np.zeros((1, 1))
        vel = np.array([[1.0]])
        forces = np.array([[1.0]])
        euler_step(pos, vel, forces, dt=1.0)
        # v -> 2, then x -> 2 (kick first).
        assert vel[0, 0] == 2.0 and pos[0, 0] == 2.0

    def test_in_place(self):
        pos, vel = np.zeros((1, 1)), np.ones((1, 1))
        p_id, v_id = id(pos), id(vel)
        euler_step(pos, vel, np.ones((1, 1)), 0.1)
        assert id(pos) == p_id and id(vel) == v_id


class TestKineticEnergy:
    def test_value(self):
        vel = np.array([[3.0, 4.0]])
        assert kinetic_energy(vel) == pytest.approx(12.5)
        assert kinetic_energy(vel, mass=2.0) == pytest.approx(25.0)

    def test_zero(self):
        assert kinetic_energy(np.zeros((5, 2))) == 0.0


class TestEnergyBehaviour:
    def test_total_energy_roughly_conserved(self):
        """Symplectic Euler on the repulsive system drifts slowly."""
        law = ForceLaw(k=1e-5, softening=5e-3)
        rng = np.random.default_rng(11)
        pos = rng.uniform(0.2, 0.8, size=(24, 2))
        vel = np.zeros((24, 2))
        ids = np.arange(24)

        def total_energy():
            return kinetic_energy(vel) + potential_energy(law, pos)

        e0 = total_energy()
        for _ in range(200):
            f, _ = pairwise_forces(law, pos, pos, target_ids=ids, source_ids=ids)
            euler_step(pos, vel, f, dt=1e-3)
            reflect(pos, vel, 1.0)
        e1 = total_energy()
        assert abs(e1 - e0) / abs(e0) < 0.02

    def test_repulsion_converts_potential_to_kinetic(self):
        law = ForceLaw(k=1e-4, softening=1e-3)
        pos = np.array([[0.49, 0.5], [0.51, 0.5]])
        vel = np.zeros((2, 2))
        ids = np.arange(2)
        for _ in range(50):
            f, _ = pairwise_forces(law, pos, pos, target_ids=ids, source_ids=ids)
            euler_step(pos, vel, f, dt=1e-3)
        assert kinetic_energy(vel) > 0
        assert pos[1, 0] > 0.51 and pos[0, 0] < 0.49

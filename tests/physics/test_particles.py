"""Particle containers and block types."""

import numpy as np
import pytest

from repro.machines.base import PARTICLE_BYTES
from repro.physics import (
    HomeBlock,
    ParticleSet,
    TravelBlock,
    VirtualBlock,
    concat_sets,
)


class TestParticleSet:
    def test_uniform_random_in_box(self):
        ps = ParticleSet.uniform_random(100, 2, 3.0, max_speed=0.5, seed=0)
        assert ps.n == 100 and ps.dim == 2 and len(ps) == 100
        assert (ps.pos >= 0).all() and (ps.pos <= 3.0).all()
        assert (np.abs(ps.vel) <= 0.5).all()
        assert np.array_equal(ps.ids, np.arange(100))

    def test_zero_speed_default(self):
        ps = ParticleSet.uniform_random(10, 2, 1.0)
        assert (ps.vel == 0).all()

    def test_id_offset(self):
        ps = ParticleSet.uniform_random(5, 1, 1.0, id_offset=100)
        assert list(ps.ids) == [100, 101, 102, 103, 104]

    def test_wire_size(self):
        ps = ParticleSet.uniform_random(13, 2, 1.0)
        assert ps.wire_nbytes == 13 * PARTICLE_BYTES

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ParticleSet(np.zeros((3, 2)), np.zeros((4, 2)), np.zeros(3))
        with pytest.raises(ValueError):
            ParticleSet(np.zeros((3, 2)), np.zeros((3, 2)), np.zeros(2))
        with pytest.raises(ValueError):
            ParticleSet(np.zeros(3), np.zeros(3), np.zeros(3))

    def test_subset_copies(self):
        ps = ParticleSet.uniform_random(10, 2, 1.0, seed=1)
        sub = ps.subset(slice(0, 3))
        sub.pos[:] = -1
        assert (ps.pos[:3] != -1).any()

    def test_subset_by_mask(self):
        ps = ParticleSet.uniform_random(10, 2, 1.0, seed=2)
        mask = ps.ids % 2 == 0
        sub = ps.subset(mask)
        assert sub.n == 5 and (sub.ids % 2 == 0).all()

    def test_copy_independent(self):
        ps = ParticleSet.uniform_random(4, 2, 1.0)
        cp = ps.copy()
        cp.vel += 1
        assert (ps.vel == 0).all()

    def test_sorted_by_id(self):
        ps = ParticleSet.uniform_random(6, 1, 1.0, seed=3)
        shuffled = ps.subset(np.array([3, 1, 5, 0, 2, 4]))
        assert np.array_equal(shuffled.sorted_by_id().ids, np.arange(6))

    def test_empty(self):
        e = ParticleSet.empty(2)
        assert len(e) == 0 and e.dim == 2

    def test_nan_positions_rejected(self):
        pos = np.array([[np.nan, 0.0]])
        with pytest.raises(ValueError, match="finite"):
            ParticleSet(pos, np.zeros((1, 2)), np.arange(1))

    def test_inf_velocities_rejected(self):
        vel = np.array([[np.inf, 0.0]])
        with pytest.raises(ValueError, match="finite"):
            ParticleSet(np.zeros((1, 2)), vel, np.arange(1))


class TestConcat:
    def test_concat_round_trip(self):
        ps = ParticleSet.uniform_random(9, 2, 1.0, seed=4)
        parts = [ps.subset(slice(0, 3)), ps.subset(slice(3, 9))]
        back = concat_sets(parts)
        assert np.array_equal(back.ids, ps.ids)
        assert np.allclose(back.pos, ps.pos)

    def test_skips_empty(self):
        ps = ParticleSet.uniform_random(3, 2, 1.0)
        out = concat_sets([ParticleSet.empty(2), ps])
        assert out.n == 3

    def test_all_empty_raises(self):
        with pytest.raises(ValueError):
            concat_sets([ParticleSet.empty(2)])


class TestBlocks:
    def test_home_block_gets_zero_forces(self):
        ps = ParticleSet.uniform_random(5, 2, 1.0)
        hb = HomeBlock(particles=ps)
        assert hb.forces.shape == (5, 2)
        assert (hb.forces == 0).all()
        assert len(hb) == 5
        assert hb.wire_nbytes == 5 * PARTICLE_BYTES

    def test_home_block_zero_forces(self):
        ps = ParticleSet.uniform_random(3, 2, 1.0)
        hb = HomeBlock(particles=ps)
        hb.forces += 1
        hb.zero_forces()
        assert (hb.forces == 0).all()

    def test_home_block_force_shape_validated(self):
        ps = ParticleSet.uniform_random(3, 2, 1.0)
        with pytest.raises(ValueError):
            HomeBlock(particles=ps, forces=np.zeros((4, 2)))

    def test_travel_block(self):
        ps = ParticleSet.uniform_random(7, 2, 1.0)
        tb = TravelBlock(pos=ps.pos, ids=ps.ids, team=3)
        assert len(tb) == 7 and tb.team == 3
        assert tb.wire_nbytes == 7 * PARTICLE_BYTES

    def test_virtual_block(self):
        vb = VirtualBlock(count=42, team=1)
        assert len(vb) == 42
        assert vb.wire_nbytes == 42 * PARTICLE_BYTES

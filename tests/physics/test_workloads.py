"""Synthetic non-uniform workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physics import (
    ForceLaw,
    TeamGeometry,
    density_gradient,
    gaussian_clusters,
    plummer_sphere,
    reference_forces,
    team_of_positions,
    two_phase,
)


GENERATORS = [
    lambda n, d, L, seed: gaussian_clusters(n, d, L, seed=seed),
    lambda n, d, L, seed: density_gradient(n, d, L, seed=seed),
    lambda n, d, L, seed: plummer_sphere(n, d, L, seed=seed),
    lambda n, d, L, seed: two_phase(n, d, L, seed=seed),
]


class TestCommonProperties:
    @pytest.mark.parametrize("gen", GENERATORS)
    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(1, 300), dim=st.sampled_from([1, 2, 3]),
           seed=st.integers(0, 1000))
    def test_inside_box_with_valid_ids(self, gen, n, dim, seed):
        ps = gen(n, dim, 2.0, seed)
        assert ps.n == n and ps.dim == dim
        assert (ps.pos >= 0).all() and (ps.pos <= 2.0).all()
        assert np.array_equal(np.sort(ps.ids), np.arange(n))

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_reproducible(self, gen):
        a = gen(100, 2, 1.0, 7)
        b = gen(100, 2, 1.0, 7)
        assert np.array_equal(a.pos, b.pos)

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_different_seeds_differ(self, gen):
        a = gen(100, 2, 1.0, 1)
        b = gen(100, 2, 1.0, 2)
        assert not np.array_equal(a.pos, b.pos)


class TestShapes:
    def test_clusters_are_clustered(self):
        ps = gaussian_clusters(500, 2, 1.0, nclusters=2, spread=0.02, seed=0)
        uniform_std = np.sqrt(1.0 / 12.0)
        # Clustered positions concentrate: pairwise spread far below uniform.
        assert ps.pos.std() < uniform_std

    def test_gradient_skews_high(self):
        ps = density_gradient(2000, 1, 1.0, exponent=3.0, seed=0)
        assert ps.pos[:, 0].mean() > 0.7

    def test_plummer_concentrates_at_scale_radius(self):
        # Plummer's cumulative mass inside r = a is 2^(-3/2) ~ 0.354 of
        # the total, independent of a; a uniform box would put ~pi a^2
        # ~ 3% of the particles there.
        ps = plummer_sphere(4000, 2, 1.0, scale_radius=0.1, seed=0)
        r = np.linalg.norm(ps.pos - 0.5, axis=1)
        frac = (r < 0.1).mean()
        assert 0.25 < frac < 0.45

    def test_plummer_is_isotropic(self):
        ps = plummer_sphere(4000, 3, 1.0, scale_radius=0.05, seed=1)
        centered = ps.pos - 0.5
        # Mean displacement cancels in every axis for an isotropic cloud.
        assert np.abs(centered.mean(axis=0)).max() < 0.02

    def test_plummer_validation(self):
        with pytest.raises(ValueError):
            plummer_sphere(10, 2, 1.0, scale_radius=0.0)
        with pytest.raises(ValueError):
            plummer_sphere(10, 0, 1.0)

    def test_two_phase_corner_density(self):
        ps = two_phase(1000, 2, 1.0, dense_fraction=0.8, dense_extent=0.25,
                       seed=0)
        in_corner = ((ps.pos < 0.25).all(axis=1)).mean()
        assert in_corner > 0.7

    def test_two_phase_validation(self):
        with pytest.raises(ValueError):
            two_phase(10, 2, 1.0, dense_fraction=1.5)
        with pytest.raises(ValueError):
            two_phase(10, 2, 1.0, dense_extent=0.0)

    def test_cluster_validation(self):
        with pytest.raises(ValueError):
            gaussian_clusters(10, 2, 1.0, nclusters=0)

    def test_velocities(self):
        ps = gaussian_clusters(50, 2, 1.0, max_speed=0.5, seed=0)
        assert (np.abs(ps.vel) <= 0.5).all()
        assert np.abs(ps.vel).max() > 0


class TestLoadImbalanceEffect:
    def test_nonuniform_distributions_unbalance_teams(self):
        """The property the paper's uniformity assumption protects against:
        clustered particles give wildly uneven team block sizes."""
        g = TeamGeometry(1.0, (4, 4))
        uniform = team_of_positions(
            gaussian_clusters(4000, 2, 1.0, nclusters=64, spread=2.0,
                              seed=0).pos, g)
        clustered = team_of_positions(
            two_phase(4000, 2, 1.0, dense_fraction=0.9, dense_extent=0.2,
                      seed=0).pos, g)
        uni_counts = np.bincount(uniform, minlength=16)
        clu_counts = np.bincount(clustered, minlength=16)
        assert clu_counts.max() / max(clu_counts.mean(), 1) > \
               uni_counts.max() / max(uni_counts.mean(), 1)

    def test_physics_still_correct_on_clusters(self, law):
        """Correctness is distribution-independent."""
        from repro.core import run_cutoff
        from repro.machines import GenericMachine

        ps = gaussian_clusters(80, 2, 1.0, nclusters=3, spread=0.08, seed=5)
        ref = reference_forces(law.with_rcut(0.3), ps)
        out = run_cutoff(GenericMachine(nranks=8), ps, 2, rcut=0.3,
                         box_length=1.0, law=law)
        scale = max(float(np.abs(ref).max()), 1e-30)
        assert np.abs(out.forces - ref).max() <= 1e-9 * scale

"""Force kernels vs. a plain-Python reference, plus physical invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physics import ForceLaw, ParticleSet, pairwise_forces, potential_energy


def brute_force(law, tpos, spos, tids=None, sids=None):
    """Textbook double loop, no vectorization."""
    nt, d = tpos.shape
    out = np.zeros((nt, d))
    eps2 = law.softening**2
    for i in range(nt):
        for j in range(spos.shape[0]):
            if tids is not None and sids is not None and tids[i] == sids[j]:
                continue
            dr = tpos[i] - spos[j]
            r2 = float(dr @ dr)
            if law.rcut is not None and r2 > law.rcut**2:
                continue
            out[i] += law.k * dr / (r2 + eps2) ** 1.5
    return out


class TestForceLaw:
    def test_with_rcut(self):
        law = ForceLaw(k=2.0, softening=0.1)
        law2 = law.with_rcut(0.5)
        assert law2.rcut == 0.5 and law2.k == 2.0 and law.rcut is None


class TestPairwiseForces:
    def test_matches_brute_force(self, law):
        rng = np.random.default_rng(0)
        t, s = rng.random((12, 2)), rng.random((9, 2))
        got, npairs = pairwise_forces(law, t, s)
        assert npairs == 12 * 9
        assert np.allclose(got, brute_force(law, t, s), atol=1e-15)

    def test_matches_brute_force_with_cutoff(self, law):
        rng = np.random.default_rng(1)
        t, s = rng.random((15, 2)), rng.random((15, 2))
        lc = law.with_rcut(0.4)
        got, _ = pairwise_forces(lc, t, s)
        assert np.allclose(got, brute_force(lc, t, s), atol=1e-15)

    def test_id_exclusion(self, law):
        rng = np.random.default_rng(2)
        pos = rng.random((10, 2))
        ids = np.arange(10)
        got, _ = pairwise_forces(law, pos, pos, target_ids=ids, source_ids=ids)
        want = brute_force(law, pos, pos, ids, ids)
        assert np.allclose(got, want, atol=1e-15)
        assert np.isfinite(got).all()

    def test_two_particles_repel(self, law):
        pos = np.array([[0.4, 0.5], [0.6, 0.5]])
        ids = np.array([0, 1])
        f, _ = pairwise_forces(law, pos, pos, target_ids=ids, source_ids=ids)
        assert f[0, 0] < 0 and f[1, 0] > 0  # pushed apart along x
        assert abs(f[0, 1]) < 1e-15 and abs(f[1, 1]) < 1e-15

    def test_newton_third_law(self, law):
        """Total internal force vanishes (symmetric kernel)."""
        rng = np.random.default_rng(3)
        pos = rng.random((30, 2))
        ids = np.arange(30)
        f, _ = pairwise_forces(law, pos, pos, target_ids=ids, source_ids=ids)
        assert np.allclose(f.sum(axis=0), 0.0, atol=1e-12 * np.abs(f).max())

    def test_accumulates_into_out(self, law):
        rng = np.random.default_rng(4)
        t, s = rng.random((5, 2)), rng.random((5, 2))
        base = np.ones((5, 2))
        got, _ = pairwise_forces(law, t, s, out=base)
        assert got is base
        fresh, _ = pairwise_forces(law, t, s)
        assert np.allclose(base, fresh + 1.0)

    def test_empty_inputs(self, law):
        t = np.empty((0, 2))
        s = np.random.default_rng(0).random((3, 2))
        out, npairs = pairwise_forces(law, t, s)
        assert out.shape == (0, 2) and npairs == 0
        out2, npairs2 = pairwise_forces(law, s, t)
        assert np.allclose(out2, 0.0) and npairs2 == 0

    def test_chunking_invariance(self, law, monkeypatch):
        """Tiny chunk limit must not change results."""
        import repro.physics.forces as F

        rng = np.random.default_rng(5)
        t, s = rng.random((40, 2)), rng.random((37, 2))
        ref, _ = pairwise_forces(law, t, s)
        monkeypatch.setattr(F, "_CHUNK_PAIRS", 64)
        chunked, _ = F.pairwise_forces(law, t, s)
        assert np.allclose(ref, chunked, atol=1e-15)

    def test_pair_counter_counts_contributions(self, law):
        rng = np.random.default_rng(6)
        pos = rng.random((8, 2))
        ids = np.arange(8)
        pc = np.zeros((8, 8), dtype=np.int64)
        pairwise_forces(law, pos, pos, target_ids=ids, source_ids=ids,
                        pair_counter=pc)
        assert (np.diag(pc) == 0).all()
        off_diag = pc[~np.eye(8, dtype=bool)]
        assert (off_diag == 1).all()

    def test_pair_counter_respects_cutoff(self, law):
        pos = np.array([[0.0, 0.0], [0.1, 0.0], [0.9, 0.0]])
        ids = np.arange(3)
        pc = np.zeros((3, 3), dtype=np.int64)
        pairwise_forces(law.with_rcut(0.2), pos, pos, target_ids=ids,
                        source_ids=ids, pair_counter=pc)
        assert pc[0, 1] == 1 and pc[1, 0] == 1
        assert pc[0, 2] == 0 and pc[2, 0] == 0

    def test_1d_and_3d_shapes(self, law):
        for d in (1, 3):
            rng = np.random.default_rng(d)
            t, s = rng.random((6, d)), rng.random((4, d))
            out, _ = pairwise_forces(law, t, s)
            assert out.shape == (6, d)
            assert np.isfinite(out).all()

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), nt=st.integers(1, 20), ns=st.integers(1, 20))
    def test_superposition_over_source_splits(self, seed, nt, ns):
        """Forces from sources A+B equal forces from A plus forces from B."""
        law = ForceLaw(k=1e-3, softening=1e-2)
        rng = np.random.default_rng(seed)
        t = rng.random((nt, 2))
        s = rng.random((ns, 2))
        cut = ns // 2
        full, _ = pairwise_forces(law, t, s)
        a, _ = pairwise_forces(law, t, s[:cut])
        b, _ = pairwise_forces(law, t, s[cut:])
        assert np.allclose(full, a + b, atol=1e-12)


class TestPotentialEnergy:
    def test_two_particle_value(self):
        law = ForceLaw(k=2.0, softening=0.0)
        pos = np.array([[0.0, 0.0], [0.5, 0.0]])
        assert potential_energy(law, pos) == pytest.approx(2.0 / 0.5)

    def test_pairs_counted_once(self, law):
        rng = np.random.default_rng(7)
        pos = rng.random((10, 2))
        u = potential_energy(law, pos)
        # Doubling the set of particles quadruples-ish, but duplicating the
        # computation must not: recomputation is deterministic.
        assert u == potential_energy(law, pos)
        assert u > 0

    def test_cutoff_truncates(self, law):
        rng = np.random.default_rng(8)
        pos = rng.random((20, 2))
        assert potential_energy(law.with_rcut(0.1), pos) <= potential_energy(law, pos)

    def test_degenerate_sizes(self, law):
        assert potential_energy(law, np.empty((0, 2))) == 0.0
        assert potential_energy(law, np.array([[0.5, 0.5]])) == 0.0

    def test_force_is_gradient_of_potential(self):
        """Numerical check: F = -dU/dx for a two-particle system."""
        law = ForceLaw(k=1.0, softening=0.05)
        base = np.array([[0.3, 0.5], [0.7, 0.5]])
        ids = np.arange(2)
        f, _ = pairwise_forces(law, base, base, target_ids=ids, source_ids=ids)
        h = 1e-7
        for axis in (0, 1):
            plus = base.copy()
            plus[0, axis] += h
            minus = base.copy()
            minus[0, axis] -= h
            dU = (potential_energy(law, plus) - potential_energy(law, minus)) / (2 * h)
            assert f[0, axis] == pytest.approx(-dU, rel=1e-5, abs=1e-8)

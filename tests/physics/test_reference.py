"""Serial reference implementations."""

import numpy as np

from repro.physics import (
    ForceLaw,
    ParticleSet,
    reference_forces,
    reference_pair_matrix,
)


class TestReferenceForces:
    def test_zero_for_single_particle(self, law):
        ps = ParticleSet.uniform_random(1, 2, 1.0)
        assert np.allclose(reference_forces(law, ps), 0.0)

    def test_total_force_vanishes(self, law, particles_2d):
        f = reference_forces(law, particles_2d)
        assert np.allclose(f.sum(axis=0), 0.0, atol=1e-14)

    def test_cutoff_reduces_magnitude_sum(self, law, particles_2d):
        f_full = reference_forces(law, particles_2d)
        f_cut = reference_forces(law.with_rcut(0.1), particles_2d)
        assert np.abs(f_cut).sum() < np.abs(f_full).sum()


class TestReferencePairMatrix:
    def test_all_pairs_no_cutoff(self, law):
        ps = ParticleSet.uniform_random(10, 2, 1.0, seed=0)
        m = reference_pair_matrix(law, ps)
        assert m.shape == (10, 10)
        assert (np.diag(m) == 0).all()
        assert m.sum() == 10 * 9

    def test_symmetric(self, law):
        ps = ParticleSet.uniform_random(12, 2, 1.0, seed=1)
        m = reference_pair_matrix(law.with_rcut(0.3), ps)
        assert (m == m.T).all()

    def test_cutoff_membership(self, law):
        ps = ParticleSet.uniform_random(15, 2, 1.0, seed=2)
        rcut = 0.25
        m = reference_pair_matrix(law.with_rcut(rcut), ps)
        order = np.argsort(ps.ids)
        pos = ps.pos[order]
        for i in range(15):
            for j in range(15):
                if i == j:
                    continue
                within = np.linalg.norm(pos[i] - pos[j]) <= rcut
                assert bool(m[i, j]) == within

    def test_ordering_by_id(self, law):
        ps = ParticleSet.uniform_random(8, 1, 1.0, seed=3)
        shuffled = ps.subset(np.array([4, 2, 7, 0, 1, 6, 3, 5]))
        m1 = reference_pair_matrix(law.with_rcut(0.2), ps)
        m2 = reference_pair_matrix(law.with_rcut(0.2), shuffled)
        assert (m1 == m2).all()

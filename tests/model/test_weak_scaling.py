"""Weak-scaling study (extension; the paper reports strong scaling only)."""

import pytest

from repro.machines import Hopper
from repro.model import allpairs_weak_scaling


def hopper(p):
    return Hopper(p)


class TestWeakScaling:
    @pytest.fixture(scope="class")
    def series(self):
        return allpairs_weak_scaling(hopper, 24576,
                                     [1536, 6144, 24576], [1, 4, 16])

    def test_n_grows_as_sqrt_p(self, series):
        pts = series[1]
        assert [n for _, n, _, _ in pts] == [24576, 49152, 98304]

    def test_baseline_efficiency_is_one(self, series):
        for c, pts in series.items():
            if pts:
                assert pts[0][3] == pytest.approx(1.0)

    def test_efficiency_in_unit_range(self, series):
        for pts in series.values():
            for _, _, t, e in pts:
                assert t > 0
                assert 0 < e <= 1.0 + 1e-9

    def test_replication_preserves_weak_scaling(self, series):
        """c=1 degrades badly; c=16 stays near-flat — the same story as
        the paper's strong scaling, in the weak regime."""
        e1 = dict((p, e) for p, _, _, e in series[1])
        e16 = dict((p, e) for p, _, _, e in series[16])
        assert e1[24576] < 0.4
        assert e16[24576] > 0.8
        assert e16[24576] > 2 * e1[24576]

    def test_infeasible_points_skipped(self):
        res = allpairs_weak_scaling(hopper, 4096, [96], [16])
        assert res[16] == []

"""Analytic model of the symmetric all-pairs variant."""

import pytest

from repro.core import run_symmetric_virtual
from repro.machines import GenericTorus, Hopper
from repro.model import allpairs_breakdown, symmetric_breakdown


@pytest.fixture(scope="module")
def machine():
    return GenericTorus(nranks=64, cores_per_node=4, alpha=2e-6, beta=5e-10,
                        pair_time=5e-8)


class TestConsistency:
    @pytest.mark.parametrize("c", [1, 2, 4])
    def test_compute_exact(self, machine, c):
        sim = run_symmetric_virtual(machine, 8192, c)
        model = symmetric_breakdown(machine, 8192, c)
        assert model.get("compute") == pytest.approx(
            sim.report.max_time("compute"), rel=0.01
        )

    @pytest.mark.parametrize("c", [1, 2, 4])
    def test_makespan_within_tolerance(self, machine, c):
        sim = run_symmetric_virtual(machine, 8192, c)
        model = symmetric_breakdown(machine, 8192, c)
        assert model.meta["makespan"] == pytest.approx(sim.elapsed, rel=0.25)

    def test_return_phase_modeled(self, machine):
        model = symmetric_breakdown(machine, 8192, 2)
        assert model.get("return") > 0


class TestPaperScaleWhatIf:
    def test_symmetry_roughly_halves_the_step(self):
        """The extension experiment: Figure 2b's workload with symmetry."""
        m = Hopper(24576)
        std = allpairs_breakdown(m, 196608, 16)
        sym = symmetric_breakdown(m, 196608, 16)
        assert sym.get("compute") == pytest.approx(std.get("compute") / 2,
                                                   rel=0.05)
        assert sym.total < 0.6 * std.total

    def test_optimum_c_unchanged(self):
        m = Hopper(24576)
        totals = {c: symmetric_breakdown(m, 196608, c).total
                  for c in (1, 4, 16, 64)}
        assert min(totals, key=totals.get) == 16

    def test_comm_becomes_relatively_more_important(self):
        """Halving compute raises the communication *fraction* — symmetry
        makes communication avoidance more valuable, not less."""
        m = Hopper(24576)
        std = allpairs_breakdown(m, 196608, 1)
        sym = symmetric_breakdown(m, 196608, 1)
        assert (sym.communication / sym.total
                > std.communication / std.total)

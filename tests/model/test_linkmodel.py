"""Vectorized link model vs. the scalar machine methods."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines import GenericMachine, GenericTorus, Hopper, Intrepid
from repro.model import LinkModel


MACHINES = [
    GenericMachine(nranks=32),
    GenericTorus(nranks=64, cores_per_node=4),
    GenericTorus(nranks=27, cores_per_node=1, ndims=3),
    Hopper(96, cores_per_node=12),
    Intrepid(64, cores_per_node=4),
]


class TestWireTimes:
    @pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name + str(m.nranks))
    def test_matches_scalar_p2p_time(self, machine):
        link = LinkModel(machine)
        rng = np.random.default_rng(0)
        src = rng.integers(0, machine.nranks, size=200)
        dst = rng.integers(0, machine.nranks, size=200)
        for nbytes in (0, 100, 52_000):
            vec = link.wire_times(src, dst, nbytes)
            scalar = np.array(
                [machine.p2p_time(int(a), int(b), nbytes) for a, b in zip(src, dst)]
            )
            assert np.allclose(vec, scalar, rtol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), nbytes=st.integers(0, 10**6))
    def test_property_on_torus(self, seed, nbytes):
        machine = GenericTorus(nranks=32, cores_per_node=2)
        link = LinkModel(machine)
        rng = np.random.default_rng(seed)
        src = rng.integers(0, 32, size=40)
        dst = rng.integers(0, 32, size=40)
        vec = link.wire_times(src, dst, nbytes)
        scalar = [machine.p2p_time(int(a), int(b), nbytes) for a, b in zip(src, dst)]
        assert np.allclose(vec, scalar)

    def test_max_wire_time(self):
        machine = GenericTorus(nranks=16, cores_per_node=1, ndims=1)
        link = LinkModel(machine)
        src = np.arange(16)
        dst = (src + 8) % 16  # antipodal on the ring
        m = link.max_wire_time(src, dst, 1000)
        assert m == max(machine.p2p_time(int(a), int(b), 1000)
                        for a, b in zip(src, dst))

    def test_includes_self_and_same_node_paths(self):
        machine = GenericTorus(nranks=8, cores_per_node=4)
        link = LinkModel(machine)
        t = link.wire_times(np.array([0, 0, 0]), np.array([0, 1, 4]), 1000)
        assert t[0] == pytest.approx(machine.p2p_time(0, 0, 1000))
        assert t[1] == pytest.approx(machine.p2p_time(0, 1, 1000))
        assert t[2] == pytest.approx(machine.p2p_time(0, 4, 1000))
        assert t[0] < t[1] < t[2]

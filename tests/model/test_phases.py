"""Phase-breakdown records."""

import pytest

from repro.model import COMM_PHASES, PhaseBreakdown


class TestPhaseBreakdown:
    def _pb(self):
        return PhaseBreakdown(
            phases={"bcast": 1.0, "shift": 2.0, "compute": 10.0, "reduce": 0.5},
            meta={"c": 4},
        )

    def test_totals(self):
        pb = self._pb()
        assert pb.total == pytest.approx(13.5)
        assert pb.communication == pytest.approx(3.5)
        assert pb.computation == pytest.approx(10.0)

    def test_comm_phase_registry(self):
        assert "shift" in COMM_PHASES
        assert "compute" not in COMM_PHASES

    def test_get_missing(self):
        assert self._pb().get("reassign") == 0.0

    def test_scaled(self):
        pb = self._pb().scaled(2.0)
        assert pb.total == pytest.approx(27.0)
        assert pb.meta == {"c": 4}

    def test_summary(self):
        text = self._pb().summary()
        assert "total=" in text and "shift=" in text

    def test_from_report(self):
        from repro.core import run_allpairs_virtual
        from repro.machines import GenericMachine

        run = run_allpairs_virtual(GenericMachine(nranks=8), 512, 2)
        pb = PhaseBreakdown.from_report(run.report)
        assert pb.get("compute") == run.report.max_time("compute")
        assert pb.get("shift") == run.report.max_time("shift")

    def test_from_report_with_fixed_labels(self):
        from repro.core import run_allpairs_virtual
        from repro.machines import GenericMachine

        run = run_allpairs_virtual(GenericMachine(nranks=8), 512, 1)
        pb = PhaseBreakdown.from_report(run.report, ("bcast", "shift"))
        assert set(pb.phases) == {"bcast", "shift"}
        assert pb.get("bcast") == 0.0

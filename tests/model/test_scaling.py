"""Strong-scaling efficiency series (the Figure 3/7 machinery)."""

import pytest

from repro.machines import Hopper
from repro.model import (
    allpairs_efficiency,
    cutoff_efficiency,
    serial_time_allpairs,
    serial_time_cutoff,
)


def hopper12(p):
    return Hopper(p, cores_per_node=12)


class TestSerialBaselines:
    def test_allpairs(self):
        assert serial_time_allpairs(1e-8, 1000) == pytest.approx(1e-8 * 1e6)

    def test_cutoff_ball_fraction(self):
        import math

        full = serial_time_allpairs(1e-8, 1000)
        cut = serial_time_cutoff(1e-8, 1000, rcut=0.25, box_length=1.0, dim=1)
        assert cut == pytest.approx(full * 0.5)  # 2 rc / L
        cut2d = serial_time_cutoff(1e-8, 1000, rcut=0.25, box_length=1.0, dim=2)
        assert cut2d == pytest.approx(full * math.pi * 0.0625)  # pi rc^2

    def test_cutoff_clipped_at_full_work(self):
        assert (serial_time_cutoff(1e-8, 100, rcut=0.9, box_length=1.0, dim=1)
                == serial_time_allpairs(1e-8, 100))


class TestAllPairsEfficiency:
    def test_series_structure(self):
        eff = allpairs_efficiency(hopper12, 8192, [48, 96, 192], [1, 2, 4])
        assert set(eff) == {1, 2, 4}
        for c, series in eff.items():
            for p, e in series:
                assert p % c == 0
                assert 0 < e <= 1.05

    def test_skips_infeasible_points(self):
        eff = allpairs_efficiency(hopper12, 8192, [48], [8])
        # c^2 = 64 > 48: no data point.
        assert eff[8] == []

    def test_skips_padded_schedules(self):
        # p=96, c=8 -> T=12, c does not divide T: skipped like the paper.
        eff = allpairs_efficiency(hopper12, 8192, [96], [8])
        assert eff[8] == []

    def test_efficiency_declines_with_p_for_c1(self):
        eff = allpairs_efficiency(hopper12, 16384, [48, 192, 768], [1])[1]
        values = [e for _, e in eff]
        assert values[0] > values[-1]

    def test_replication_helps_at_scale(self):
        eff = allpairs_efficiency(hopper12, 16384, [768], [1, 4])
        assert eff[4][0][1] > eff[1][0][1]


class TestCutoffEfficiency:
    def test_series_structure(self):
        eff = cutoff_efficiency(hopper12, 8192, [48, 96], [1, 2],
                                rcut=0.25, box_length=1.0, dim=1)
        for c, series in eff.items():
            for p, e in series:
                assert 0 < e <= 1.1

    def test_c_beyond_window_skipped(self):
        # Tiny machine: window smaller than a large c.
        eff = cutoff_efficiency(hopper12, 4096, [144], [12],
                                rcut=0.05, box_length=1.0, dim=1)
        assert eff[12] == []

    def test_2d(self):
        eff = cutoff_efficiency(hopper12, 8192, [96], [1, 2],
                                rcut=0.25, box_length=1.0, dim=2)
        assert eff[1] and eff[2]

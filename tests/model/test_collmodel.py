"""Embedded collective timing vs. direct engine measurements."""

import operator

import pytest

from repro.machines import GenericTorus, Hopper
from repro.model import (
    SubsetMachine,
    team_bcast_time,
    team_reduce_time,
    world_allgather_time,
)
from repro.simmpi import Engine


class _Sized:
    __slots__ = ("wire_nbytes",)

    def __init__(self, nbytes):
        self.wire_nbytes = nbytes

    def __add__(self, other):
        return self


class TestSubsetMachine:
    def test_translates_ranks(self):
        parent = GenericTorus(nranks=16, cores_per_node=4)
        sub = SubsetMachine(parent, (1, 9, 13))
        assert sub.nranks == 3
        assert sub.p2p_time(0, 1, 100) == parent.p2p_time(1, 9, 100)
        assert not sub.has_hw_collectives
        with pytest.raises(NotImplementedError):
            sub.hw_collective_time("bcast", 8, 3)

    def test_delegates_compute(self):
        parent = GenericTorus(nranks=4, pair_time=2e-8)
        sub = SubsetMachine(parent, (0, 2))
        assert sub.interactions_time(100) == pytest.approx(2e-6)


class TestTeamCollectiveTimes:
    def test_matches_direct_engine_run(self):
        machine = GenericTorus(nranks=32, cores_per_node=4)
        ranks = (3, 11, 19, 27)
        nbytes = 4096

        def program(comm):
            group = comm.sub(list(ranks))
            if group is not None:
                v = yield from group.bcast(
                    _Sized(nbytes) if group.rank == 0 else None, 0
                )
                del v
            return comm.now()

        direct = Engine(machine).run(program)
        t_direct = max(direct.results[r] for r in ranks)
        assert team_bcast_time(machine, ranks, nbytes) == pytest.approx(t_direct)

    def test_reduce_matches_direct_engine_run(self):
        machine = GenericTorus(nranks=32, cores_per_node=4)
        ranks = (0, 8, 16, 24)
        nbytes = 1024

        def program(comm):
            group = comm.sub(list(ranks))
            if group is not None:
                v = yield from group.reduce(_Sized(nbytes), operator.add, 0)
                del v
            return comm.now()

        direct = Engine(machine).run(program)
        t_direct = max(direct.results[r] for r in ranks)
        assert team_reduce_time(machine, ranks, nbytes) == pytest.approx(t_direct)

    def test_single_member_free(self):
        machine = GenericTorus(nranks=4)
        assert team_bcast_time(machine, (2,), 999) == 0.0
        assert team_reduce_time(machine, (2,), 999) == 0.0

    def test_grows_with_team_size(self):
        machine = Hopper(96, cores_per_node=12)
        t2 = team_bcast_time(machine, (0, 48), 5200)
        t4 = team_bcast_time(machine, (0, 24, 48, 72), 5200)
        assert t4 > t2

    def test_caching_stable(self):
        machine = GenericTorus(nranks=8)
        a = team_bcast_time(machine, (0, 4), 128)
        b = team_bcast_time(machine, (0, 4), 128)
        assert a == b


class TestWorldAllgather:
    def test_matches_engine_power_of_two(self):
        machine = GenericTorus(nranks=16, cores_per_node=1)
        nbytes = 2048

        def program(comm):
            v = yield from comm.allgather(_Sized(nbytes))
            del v
            return comm.now()

        direct = Engine(machine).run(program)
        model = world_allgather_time(machine, nbytes)
        # The formula uses mean hop distances; agreement within 2x.
        assert model == pytest.approx(max(direct.results), rel=1.0)

    def test_single_rank_free(self):
        assert world_allgather_time(GenericTorus(nranks=1), 100) == 0.0

    def test_grows_with_volume(self):
        machine = GenericTorus(nranks=64, cores_per_node=4)
        assert (world_allgather_time(machine, 10_000)
                > world_allgather_time(machine, 100))

    def test_non_power_of_two_path(self):
        machine = GenericTorus(nranks=24, cores_per_node=4)
        assert world_allgather_time(machine, 1000) > 0

"""Analytic model vs. exact event simulation — the cross-validation that
justifies using the model at the paper's 24K/32K-core scales."""

import pytest

from repro.core import run_allpairs_virtual, run_cutoff_virtual
from repro.machines import GenericTorus, Hopper, Intrepid
from repro.model import (
    allgather_baseline_breakdown,
    allpairs_breakdown,
    cutoff_breakdown,
)


@pytest.fixture(scope="module")
def machine():
    return GenericTorus(nranks=64, cores_per_node=4, alpha=2e-6, beta=5e-10,
                        pair_time=5e-8)


class TestAllPairsConsistency:
    """Uniform work: the model must match the simulator essentially exactly."""

    @pytest.mark.parametrize("c", [1, 2, 4, 8])
    def test_phases_match(self, machine, c):
        sim = run_allpairs_virtual(machine, 8192, c)
        model = allpairs_breakdown(machine, 8192, c)
        for phase in ("bcast", "shift", "compute", "reduce"):
            s = sim.report.max_time(phase)
            m = model.get(phase)
            assert m == pytest.approx(s, rel=0.02, abs=1e-7), phase

    @pytest.mark.parametrize("c", [1, 2, 4, 8])
    def test_makespan_matches(self, machine, c):
        sim = run_allpairs_virtual(machine, 8192, c)
        model = allpairs_breakdown(machine, 8192, c)
        assert model.meta["makespan"] == pytest.approx(sim.elapsed, rel=0.02)

    def test_different_n(self, machine):
        for n in (1024, 4096):
            sim = run_allpairs_virtual(machine, n, 4)
            model = allpairs_breakdown(machine, n, 4)
            assert model.meta["makespan"] == pytest.approx(sim.elapsed, rel=0.05)

    def test_hopper_flavor_machine(self):
        m = Hopper(48, cores_per_node=12)
        sim = run_allpairs_virtual(m, 4096, 4)
        model = allpairs_breakdown(m, 4096, 4)
        assert model.meta["makespan"] == pytest.approx(sim.elapsed, rel=0.1)


class TestCutoffConsistency:
    """Boundary imbalance makes per-phase attribution fuzzier (waits land
    on different ranks), but compute must be exact and the makespan within
    a few percent."""

    @pytest.mark.parametrize("dim,rcut", [(1, 0.25), (2, 0.2)])
    @pytest.mark.parametrize("c", [1, 2, 4])
    def test_compute_exact(self, machine, dim, rcut, c):
        sim = run_cutoff_virtual(machine, 8192, c, rcut=rcut, box_length=1.0,
                                 dim=dim)
        model = cutoff_breakdown(machine, 8192, c, rcut=rcut, box_length=1.0,
                                 dim=dim, include_reassign=False)
        assert model.get("compute") == pytest.approx(
            sim.report.max_time("compute"), rel=0.02
        )

    @pytest.mark.parametrize("dim,rcut", [(1, 0.25), (2, 0.2)])
    @pytest.mark.parametrize("c", [1, 2, 4])
    def test_shift_and_bcast_match(self, machine, dim, rcut, c):
        sim = run_cutoff_virtual(machine, 8192, c, rcut=rcut, box_length=1.0,
                                 dim=dim)
        model = cutoff_breakdown(machine, 8192, c, rcut=rcut, box_length=1.0,
                                 dim=dim, include_reassign=False)
        assert model.get("bcast") == pytest.approx(
            sim.report.max_time("bcast"), rel=0.05, abs=1e-7
        )
        # The stall estimate is coarse on tiny grids (row-granularity
        # effects); at paper scale windows are hundreds of cells wide.
        assert model.get("shift") == pytest.approx(
            sim.report.max_time("shift"), rel=0.45, abs=1e-6
        )

    @pytest.mark.parametrize("dim,rcut,c", [(1, 0.25, 1), (1, 0.25, 2),
                                            (1, 0.25, 4), (1, 0.25, 8),
                                            (2, 0.2, 1), (2, 0.2, 2),
                                            (2, 0.2, 4), (2, 0.2, 8)])
    def test_makespan_within_tolerance(self, machine, dim, rcut, c):
        sim = run_cutoff_virtual(machine, 8192, c, rcut=rcut, box_length=1.0,
                                 dim=dim)
        model = cutoff_breakdown(machine, 8192, c, rcut=rcut, box_length=1.0,
                                 dim=dim, include_reassign=False)
        assert model.meta["makespan"] == pytest.approx(sim.elapsed, rel=0.05)


class TestModelStructure:
    def test_paper_scale_runs_fast(self):
        """The whole point: paper-scale estimates in well under a second."""
        import time

        m = Hopper(24576)
        t0 = time.time()
        b = allpairs_breakdown(m, 196608, 16)
        assert time.time() - t0 < 5.0
        assert b.total > 0
        assert set(b.phases) == {"bcast", "shift", "compute", "reduce"}

    def test_meta_fields(self):
        b = allpairs_breakdown(Hopper(96, cores_per_node=12), 4096, 4)
        for key in ("algorithm", "p", "n", "c", "teams", "steps", "makespan"):
            assert key in b.meta

    def test_cutoff_includes_reassign_by_default(self):
        b = cutoff_breakdown(Hopper(96, cores_per_node=12), 4096, 4,
                             rcut=0.25, box_length=1.0, dim=1)
        assert "reassign" in b.phases
        assert b.phases["reassign"] > 0

    def test_cutoff_window_meta(self):
        b = cutoff_breakdown(Hopper(96, cores_per_node=12), 4096, 2,
                             rcut=0.25, box_length=1.0, dim=1)
        assert b.meta["window"] >= 2 * b.meta["m"][0] + 1

    def test_allgather_baseline_tree_needs_hw(self):
        with pytest.raises(ValueError):
            allgather_baseline_breakdown(Hopper(96, cores_per_node=12),
                                         4096, use_tree=True)

    def test_allgather_baseline_tree_vs_soft(self):
        m = Intrepid(64, cores_per_node=4)
        tree = allgather_baseline_breakdown(m, 4096, use_tree=True)
        soft = allgather_baseline_breakdown(
            Intrepid(64, cores_per_node=4, tree=False), 4096, use_tree=False
        )
        assert tree.get("allgather") < soft.get("allgather")
        assert tree.get("compute") == soft.get("compute")

    def test_collective_contention_scales_collectives(self):
        import dataclasses

        base = Hopper(96, cores_per_node=12)
        hot = dataclasses.replace(base, collective_contention=0.5)
        b0 = allpairs_breakdown(base, 4096, 8)
        b1 = allpairs_breakdown(hot, 4096, 8)
        # base machine has cc=0.04; scaling is (1+0.5*7)/(1+0.04*7).
        expect = (1 + 0.5 * 7) / (1 + 0.04 * 7)
        assert b1.get("bcast") / b0.get("bcast") == pytest.approx(expect)
        assert b1.get("shift") == b0.get("shift")

"""Analytic model of the periodic-box cutoff variant."""

import pytest

from repro.core import run_cutoff_virtual
from repro.machines import GenericTorus, Hopper
from repro.model import cutoff_breakdown


@pytest.fixture(scope="module")
def machine():
    return GenericTorus(nranks=64, cores_per_node=4, alpha=2e-6, beta=5e-10,
                        pair_time=5e-8)


class TestConsistency:
    @pytest.mark.parametrize("c", [1, 2, 4])
    def test_compute_exact(self, machine, c):
        sim = run_cutoff_virtual(machine, 8192, c, rcut=0.25, box_length=1.0,
                                 dim=1, periodic=True)
        mod = cutoff_breakdown(machine, 8192, c, rcut=0.25, box_length=1.0,
                               dim=1, include_reassign=False, periodic=True)
        assert mod.get("compute") == pytest.approx(
            sim.report.max_time("compute"), rel=0.01
        )

    @pytest.mark.parametrize("c", [1, 2, 4])
    def test_makespan(self, machine, c):
        sim = run_cutoff_virtual(machine, 8192, c, rcut=0.25, box_length=1.0,
                                 dim=1, periodic=True)
        mod = cutoff_breakdown(machine, 8192, c, rcut=0.25, box_length=1.0,
                               dim=1, include_reassign=False, periodic=True)
        assert mod.meta["makespan"] == pytest.approx(sim.elapsed, rel=0.05)

    def test_shift_exact_at_c1(self, machine):
        """Uniform work: the gate model is exact, not just close."""
        sim = run_cutoff_virtual(machine, 8192, 1, rcut=0.25, box_length=1.0,
                                 dim=1, periodic=True)
        mod = cutoff_breakdown(machine, 8192, 1, rcut=0.25, box_length=1.0,
                               dim=1, include_reassign=False, periodic=True)
        assert mod.get("shift") == pytest.approx(
            sim.report.max_time("shift"), rel=1e-9
        )


class TestPaperScaleEffect:
    def test_stall_floor_vanishes(self):
        """The paper blames its shift-cost stagnation on the boundary; with
        a periodic box the stall floor disappears and shifts fall toward
        zero with c, like the all-pairs runs."""
        m = Hopper(24576)
        for c in (16, 64):
            refl = cutoff_breakdown(m, 196608, c, rcut=0.25, box_length=1.0,
                                    dim=1)
            per = cutoff_breakdown(m, 196608, c, rcut=0.25, box_length=1.0,
                                   dim=1, periodic=True)
            assert per.get("shift") < refl.get("shift") / 5
            assert per.total < refl.total

    def test_periodic_computes_more_but_balanced(self):
        """Every team gets the full window: more total pairs, zero spread."""
        m = Hopper(96, cores_per_node=12)
        refl = cutoff_breakdown(m, 9216, 1, rcut=0.25, box_length=1.0, dim=1)
        per = cutoff_breakdown(m, 9216, 1, rcut=0.25, box_length=1.0, dim=1,
                               periodic=True)
        assert per.get("compute") >= refl.get("compute")
        # All stall terms vanish under uniformity.
        assert per.get("shift") < refl.get("shift")

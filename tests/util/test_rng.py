"""Seeded RNG helpers: reproducibility and independence."""

import numpy as np

from repro.util import default_rng, spawn_rngs


class TestDefaultRng:
    def test_none_is_deterministic(self):
        a = default_rng(None).random(8)
        b = default_rng(None).random(8)
        assert np.array_equal(a, b)

    def test_same_seed_same_stream(self):
        assert np.array_equal(default_rng(7).random(8), default_rng(7).random(8))

    def test_different_seeds_differ(self):
        assert not np.array_equal(default_rng(1).random(8), default_rng(2).random(8))

    def test_generator_passthrough(self):
        g = np.random.default_rng(3)
        assert default_rng(g) is g


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_independent(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(a.random(16), b.random(16))

    def test_reproducible(self):
        x = [g.random(4) for g in spawn_rngs(9, 3)]
        y = [g.random(4) for g in spawn_rngs(9, 3)]
        for xa, ya in zip(x, y):
            assert np.array_equal(xa, ya)

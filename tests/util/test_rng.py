"""Seeded RNG helpers: reproducibility and independence."""

import numpy as np

from repro.util import default_rng, spawn_rngs


class TestDefaultRng:
    def test_none_is_deterministic(self):
        a = default_rng(None).random(8)
        b = default_rng(None).random(8)
        assert np.array_equal(a, b)

    def test_same_seed_same_stream(self):
        assert np.array_equal(default_rng(7).random(8), default_rng(7).random(8))

    def test_different_seeds_differ(self):
        assert not np.array_equal(default_rng(1).random(8), default_rng(2).random(8))

    def test_generator_passthrough(self):
        g = np.random.default_rng(3)
        assert default_rng(g) is g


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_independent(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(a.random(16), b.random(16))

    def test_reproducible(self):
        x = [g.random(4) for g in spawn_rngs(9, 3)]
        y = [g.random(4) for g in spawn_rngs(9, 3)]
        for xa, ya in zip(x, y):
            assert np.array_equal(xa, ya)

    def test_none_seed_uses_package_default(self):
        """``seed=None`` substitutes ``_DEFAULT_SEED``, not fresh entropy."""
        from repro.util.rng import _DEFAULT_SEED

        a = [g.random(4) for g in spawn_rngs(None, 3)]
        b = [g.random(4) for g in spawn_rngs(_DEFAULT_SEED, 3)]
        for xa, xb in zip(a, b):
            assert np.array_equal(xa, xb)

    def test_child_streams_independent_of_k(self):
        """Child ``i`` depends only on ``(seed, i)``: widening the spawn
        count never reshuffles earlier streams."""
        narrow = [g.random(8) for g in spawn_rngs(42, 4)]
        wide = [g.random(8) for g in spawn_rngs(42, 16)]
        for xa, xb in zip(narrow, wide):
            assert np.array_equal(xa, xb)

    def test_children_uncorrelated_pinned(self):
        """Pin pairwise decorrelation across a block of children."""
        draws = np.stack([g.standard_normal(4096)
                          for g in spawn_rngs(7, 8)])
        corr = np.corrcoef(draws)
        off = corr[~np.eye(8, dtype=bool)]
        assert np.abs(off).max() < 0.06

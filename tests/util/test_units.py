"""Unit-formatting helpers."""

import math

from repro.util import GB, KB, MB, fmt_bytes, fmt_count, fmt_time


class TestFmtTime:
    def test_seconds(self):
        assert fmt_time(2.5) == "2.500 s"

    def test_milliseconds(self):
        assert fmt_time(0.0123) == "12.300 ms"

    def test_microseconds(self):
        assert fmt_time(4.2e-5) == "42.000 us"

    def test_nanoseconds(self):
        assert fmt_time(3e-9) == "3.0 ns"

    def test_nan(self):
        assert fmt_time(math.nan) == "nan"

    def test_negative(self):
        assert fmt_time(-0.002).startswith("-2.000")


class TestFmtBytes:
    def test_bytes(self):
        assert fmt_bytes(512) == "512 B"

    def test_kib(self):
        assert fmt_bytes(2 * KB) == "2.00 KiB"

    def test_mib(self):
        assert fmt_bytes(1.5 * MB) == "1.50 MiB"

    def test_gib(self):
        assert fmt_bytes(3 * GB) == "3.00 GiB"


class TestFmtCount:
    def test_plain(self):
        assert fmt_count(42) == "42"

    def test_kilo(self):
        assert fmt_count(24576) == "24.6K"

    def test_mega(self):
        assert fmt_count(2_500_000) == "2.5M"

    def test_giga(self):
        assert fmt_count(3.2e9) == "3.2G"

"""Block-partition helpers: exhaustive small cases plus property tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import (
    block_bounds,
    block_owner,
    block_size,
    block_starts,
    even_blocks,
)


class TestBlockSize:
    def test_even_division(self):
        assert [block_size(12, 4, i) for i in range(4)] == [3, 3, 3, 3]

    def test_remainder_goes_first(self):
        assert [block_size(10, 4, i) for i in range(4)] == [3, 3, 2, 2]

    def test_more_blocks_than_items(self):
        assert [block_size(2, 5, i) for i in range(5)] == [1, 1, 0, 0, 0]

    def test_single_block(self):
        assert block_size(7, 1, 0) == 7

    def test_out_of_range_raises(self):
        with pytest.raises(IndexError):
            block_size(10, 4, 4)
        with pytest.raises(IndexError):
            block_size(10, 4, -1)


class TestBlockBounds:
    def test_contiguous_cover(self):
        bounds = [block_bounds(10, 3, i) for i in range(3)]
        assert bounds == [(0, 4), (4, 7), (7, 10)]

    def test_out_of_range_raises(self):
        with pytest.raises(IndexError):
            block_bounds(10, 3, 3)

    @given(n=st.integers(0, 500), k=st.integers(1, 60))
    def test_blocks_partition_range(self, n, k):
        prev_hi = 0
        for i in range(k):
            lo, hi = block_bounds(n, k, i)
            assert lo == prev_hi
            assert hi - lo == block_size(n, k, i)
            prev_hi = hi
        assert prev_hi == n

    @given(n=st.integers(0, 500), k=st.integers(1, 60))
    def test_sizes_differ_by_at_most_one(self, n, k):
        sizes = [block_size(n, k, i) for i in range(k)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == n


class TestBlockStarts:
    def test_matches_bounds(self):
        starts = block_starts(11, 4)
        assert list(starts) == [0, 3, 6, 9, 11]

    @given(n=st.integers(0, 300), k=st.integers(1, 40))
    def test_consistent_with_block_bounds(self, n, k):
        starts = block_starts(n, k)
        assert starts.dtype == np.int64
        for i in range(k):
            assert (starts[i], starts[i + 1]) == block_bounds(n, k, i)


class TestBlockOwner:
    @given(n=st.integers(1, 400), k=st.integers(1, 50))
    def test_owner_consistent_with_bounds(self, n, k):
        for item in {0, n // 2, n - 1}:
            owner = block_owner(n, k, item)
            lo, hi = block_bounds(n, k, owner)
            assert lo <= item < hi

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            block_owner(10, 3, 10)


class TestEvenBlocks:
    def test_returns_all_ranges(self):
        assert even_blocks(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_types_are_python_ints(self):
        for lo, hi in even_blocks(9, 2):
            assert isinstance(lo, int) and isinstance(hi, int)

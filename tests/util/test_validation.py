"""Argument-validation helpers."""

import pytest

from repro.util import (
    require,
    require_divides,
    require_positive,
    require_power_of_two,
)


class TestRequire:
    def test_passes(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestRequirePositive:
    def test_positive_ok(self):
        require_positive(0.5, "x")
        require_positive(3, "x")

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_non_positive_raises(self, bad):
        with pytest.raises(ValueError, match="x must be positive"):
            require_positive(bad, "x")


class TestRequireDivides:
    def test_divides_ok(self):
        require_divides(4, 12, "teams")

    def test_non_divisor_raises(self):
        with pytest.raises(ValueError, match="teams"):
            require_divides(5, 12, "teams")

    def test_zero_divisor_raises(self):
        with pytest.raises(ValueError):
            require_divides(0, 12, "teams")


class TestRequirePowerOfTwo:
    @pytest.mark.parametrize("good", [1, 2, 4, 1024])
    def test_powers_ok(self, good):
        require_power_of_two(good, "p")

    @pytest.mark.parametrize("bad", [0, 3, 6, -4])
    def test_non_powers_raise(self, bad):
        with pytest.raises(ValueError, match="p must be a power of two"):
            require_power_of_two(bad, "p")

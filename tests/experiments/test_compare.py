"""Cross-algorithm comparison harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    AlgorithmComparison,
    ComparisonResult,
    compare_algorithms,
    render_comparison,
)
from repro.machines import GenericMachine
from repro.physics import ParticleSet


@pytest.fixture
def machine():
    return GenericMachine(nranks=16)


@pytest.fixture
def particles():
    return ParticleSet.uniform_random(64, 2, 1.0, max_speed=0.1, seed=11)


def test_full_functional_sweep(machine, particles):
    result = compare_algorithms(machine, particles, c=2, rcut=0.3)
    assert isinstance(result, ComparisonResult)
    names = [e.algorithm for e in result.entries]
    # Square p and rcut given: every functional algorithm participates.
    assert set(names) >= {"allpairs", "cutoff", "midpoint", "spatial",
                          "symmetric", "particle_ring",
                          "particle_allgather", "force_decomposition"}
    assert not result.skipped
    for e in result.entries:
        assert isinstance(e, AlgorithmComparison)
        # Each algorithm matches ITS OWN serial reference (cutoff methods
        # against the cutoff law, open methods against the open law).
        assert e.max_abs_dev < 1e-12
        assert e.elapsed > 0
        assert e.critical_messages >= 0
        assert e.phase_table
        for cell in e.phase_table.values():
            assert set(cell) == {"max_s", "mean_s", "max_messages",
                                 "max_bytes", "retries", "redelivered"}


def test_skips_record_reasons(particles):
    machine = GenericMachine(nranks=8)  # not square, and no rcut passed
    result = compare_algorithms(machine, particles)
    skipped = result.skipped
    assert "needs a cutoff radius" in skipped["cutoff"]
    assert "needs a cutoff radius" in skipped["spatial"]
    assert "needs a cutoff radius" in skipped["midpoint"]
    assert "square rank count" in skipped["force_decomposition"]
    ran = {e.algorithm for e in result.entries}
    assert ran == {"allpairs", "symmetric", "particle_ring",
                   "particle_allgather", "systolic_ring",
                   "half_systolic", "hyper_systolic"}


def test_modeled_algorithms_skipped_by_default(machine, particles):
    result = compare_algorithms(machine, particles,
                                algorithms=["allpairs", "allpairs_virtual"])
    assert [e.algorithm for e in result.entries] == ["allpairs"]
    assert "modeled" in result.skipped["allpairs_virtual"]


def test_c_adapts_to_capability(machine, particles):
    """c=4 applies where supported and silently drops to 1 elsewhere."""
    result = compare_algorithms(machine, particles, c=4,
                                algorithms=["allpairs", "particle_ring"])
    by_name = {e.algorithm: e for e in result.entries}
    assert by_name["allpairs"].run.spec.c == 4
    assert by_name["particle_ring"].run.spec.c == 1


def test_workload_synthesis(machine):
    result = compare_algorithms(machine, n=48, seed=3,
                                algorithms=["allpairs", "particle_ring"])
    assert len(result.entries) == 2
    a, b = result.entries
    np.testing.assert_array_equal(a.run.forces.shape, b.run.forces.shape)


def test_render_table(machine, particles):
    result = compare_algorithms(machine, particles, c=2,
                                algorithms=["allpairs", "symmetric",
                                            "cutoff"])
    text = render_comparison(result)
    assert "algorithm" in text and "max|dF|" in text
    assert "allpairs" in text and "symmetric" in text
    assert "skipped: needs a cutoff radius" in text  # cutoff without rcut
    assert "phase breakdown" in text


def test_render_empty():
    text = render_comparison(ComparisonResult(entries=[], skipped={}))
    assert "algorithm" in text

"""Experiment harness: configs, drivers, renderers."""

import pytest

from repro.experiments import (
    FIG2,
    FIG3,
    FIG6,
    FIG7,
    PAPER_FIGURES,
    render_figure,
    run_figure,
    validate_figure,
)


class TestConfigs:
    def test_all_panels_present(self):
        assert set(PAPER_FIGURES) == {
            "2a", "2b", "2c", "2d", "3a", "3b",
            "6a", "6b", "6c", "6d", "7a", "7b", "7c", "7d",
        }

    def test_paper_parameters(self):
        assert FIG2["2b"].machine_sizes == (24576,)
        assert FIG2["2b"].n == 196608
        assert FIG2["2d"].n == 262144
        assert FIG3["3a"].machine_sizes[-1] == 24576
        assert FIG7["7a"].machine_sizes[0] == 96

    def test_cutoff_quarter_box(self):
        assert FIG6["6a"].rcut == pytest.approx(0.25)

    def test_intrepid_panels_have_tree_baseline(self):
        assert FIG2["2c"].tree_baseline and FIG2["2d"].tree_baseline
        assert not FIG2["2a"].tree_baseline

    def test_machine_factories(self):
        assert FIG2["2a"].machine_factory(6144).nranks == 6144
        assert FIG2["2c"].machine_factory(8192).has_hw_collectives


class TestBreakdownFigures:
    @pytest.fixture(scope="class")
    def fig2a(self):
        return run_figure(FIG2["2a"])

    def test_series_labels(self, fig2a):
        assert list(fig2a.breakdowns) == [f"c={c}" for c in FIG2["2a"].cs]

    def test_communication_decreases(self, fig2a):
        comm = list(fig2a.comm_series().values())
        assert all(a >= b for a, b in zip(comm, comm[1:]))

    def test_compute_constant_across_c(self, fig2a):
        computes = [b.get("compute") for b in fig2a.breakdowns.values()]
        assert max(computes) <= 1.05 * min(computes)

    def test_render(self, fig2a):
        text = render_figure(fig2a)
        assert "Figure 2a" in text
        assert "c=32" in text
        assert "best total" in text

    def test_tree_baseline_rows(self):
        res = run_figure(FIG2["2c"])
        assert "c=1 (tree)" in res.breakdowns
        assert "c=1 (no-tree)" in res.breakdowns
        tree = res.breakdowns["c=1 (tree)"]
        nt = res.breakdowns["c=1 (no-tree)"]
        assert tree.get("allgather") < nt.get("allgather")


class TestCutoffFigures:
    @pytest.fixture(scope="class")
    def fig6a(self):
        return run_figure(FIG6["6a"])

    def test_reassign_present(self, fig6a):
        for b in fig6a.breakdowns.values():
            assert "reassign" in b.phases

    def test_largest_c_never_best(self, fig6a):
        labels = list(fig6a.breakdowns)
        assert fig6a.best_label() != labels[-1]

    def test_render(self, fig6a):
        text = render_figure(fig6a)
        assert "reassign(ms)" in text


class TestScalingFigures:
    def test_fig3a_series(self):
        res = run_figure(FIG3["3a"])
        assert res.efficiency
        text = render_figure(res)
        assert "relative efficiency" in text
        # c=1 efficiency collapses with machine size.
        series = dict(res.efficiency[1])
        assert series[24576] < series[1536]

    def test_fig7_series_smaller_figures(self):
        res = run_figure(FIG7["7c"])
        best_at_32k = max(
            dict(s).get(32768, 0.0) for s in res.efficiency.values()
        )
        c1_at_32k = dict(res.efficiency[1])[32768]
        assert best_at_32k > 1.4 * c1_at_32k

    def test_unknown_kind_rejected(self):
        import dataclasses

        cfg = dataclasses.replace(FIG3["3a"], kind="nonsense")
        with pytest.raises(ValueError):
            run_figure(cfg)


class TestValidation:
    def test_allpairs_validation_shape(self):
        res = validate_figure(FIG2["2a"], p=32, n=2048, cs=(1, 2, 4))
        comm = [b.communication for b in res.breakdowns.values()]
        assert comm[0] > comm[-1]

    def test_cutoff_validation_runs(self):
        res = validate_figure(FIG6["6a"], p=32, n=2048, cs=(1, 2))
        for b in res.breakdowns.values():
            assert b.get("reassign") >= 0
            assert b.get("compute") > 0

    def test_intrepid_validation(self):
        res = validate_figure(FIG2["2c"], p=32, n=1024, cs=(1, 2))
        assert "c=1" in res.breakdowns

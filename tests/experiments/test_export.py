"""CSV/JSON export of regenerated figures."""

import csv
import io
import json

import pytest

from repro.cli import main as cli_main
from repro.experiments import FIG2, FIG3, export_csv, export_json, run_figure


@pytest.fixture(scope="module")
def fig2a():
    return run_figure(FIG2["2a"])


@pytest.fixture(scope="module")
def fig3a():
    return run_figure(FIG3["3a"])


class TestCsv:
    def test_breakdown_rows_parse(self, fig2a):
        rows = list(csv.DictReader(io.StringIO(export_csv(fig2a))))
        assert {"figure", "config", "phase", "seconds"} == set(rows[0])
        labels = {r["config"] for r in rows}
        assert labels == set(fig2a.breakdowns)
        # Totals equal the sum of the phase rows per config.
        for label in labels:
            mine = [r for r in rows if r["config"] == label]
            total = next(float(r["seconds"]) for r in mine
                         if r["phase"] == "total")
            parts = sum(float(r["seconds"]) for r in mine
                        if r["phase"] != "total")
            assert total == pytest.approx(parts)

    def test_scaling_rows(self, fig3a):
        rows = list(csv.DictReader(io.StringIO(export_csv(fig3a))))
        assert {"figure", "c", "machine_size", "efficiency"} == set(rows[0])
        effs = [float(r["efficiency"]) for r in rows]
        assert all(0 < e <= 1.05 for e in effs)

    def test_round_trip_precision(self, fig2a):
        """repr-formatted floats reload exactly."""
        rows = list(csv.DictReader(io.StringIO(export_csv(fig2a))))
        total = next(float(r["seconds"]) for r in rows
                     if r["config"] == "c=1" and r["phase"] == "total")
        assert total == fig2a.breakdowns["c=1"].total


class TestJson:
    def test_breakdown_document(self, fig2a):
        doc = json.loads(export_json(fig2a))
        assert doc["figure"] == "2a"
        assert doc["machine"] == "hopper"
        assert set(doc["breakdowns"]) == set(fig2a.breakdowns)
        c1 = doc["breakdowns"]["c=1"]
        assert c1["total"] == pytest.approx(fig2a.breakdowns["c=1"].total)

    def test_scaling_document(self, fig3a):
        doc = json.loads(export_json(fig3a))
        assert "efficiency" in doc
        series = doc["efficiency"]["1"]
        assert series[0][0] == 1536


class TestCliFormats:
    def _run(self, *argv):
        buf = io.StringIO()
        code = cli_main(list(argv), out=buf)
        return code, buf.getvalue()

    def test_csv_flag(self):
        code, out = self._run("figures", "2a", "--format", "csv")
        assert code == 0
        assert out.startswith("figure,config,phase,seconds")

    def test_json_flag(self):
        code, out = self._run("figures", "3a", "--format", "json")
        assert code == 0
        json.loads(out.strip())

    def test_chart_flag(self):
        code, out = self._run("figures", "2a", "--chart")
        assert code == 0
        assert "legend:" in out

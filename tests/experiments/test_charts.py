"""ASCII chart rendering of the evaluation figures."""

import pytest

from repro.experiments import (
    FIG2,
    FIG3,
    chart_breakdown,
    chart_figure,
    chart_scaling,
    run_figure,
    validate_figure,
)


@pytest.fixture(scope="module")
def fig2a():
    return run_figure(FIG2["2a"])


@pytest.fixture(scope="module")
def fig3a():
    return run_figure(FIG3["3a"])


class TestBreakdownChart:
    def test_one_bar_per_config(self, fig2a):
        text = chart_breakdown(fig2a)
        for c in FIG2["2a"].cs:
            assert f"c={c}" in text
        assert "legend:" in text

    def test_bar_lengths_track_totals(self, fig2a):
        text = chart_breakdown(fig2a, width=40)
        lengths = {}
        for line in text.splitlines():
            if "|" in line and "ms" in line:
                label = line.split("|")[0].strip()
                bar = line.split("|")[1]
                lengths[label] = sum(1 for ch in bar if ch != " ")
        totals = {k: b.total for k, b in fig2a.breakdowns.items()}
        # The longest bar belongs to the slowest configuration.
        assert max(lengths, key=lengths.get) == max(totals, key=totals.get)

    def test_phase_glyphs_present(self, fig2a):
        text = chart_breakdown(fig2a)
        assert "#" in text  # compute
        assert "=" in text  # shift

    def test_dispatch(self, fig2a):
        assert chart_figure(fig2a) == chart_breakdown(fig2a)


class TestScalingChart:
    def test_structure(self, fig3a):
        text = chart_scaling(fig3a)
        assert "1.0 |" in text and "0.0 |" in text
        for p in FIG3["3a"].machine_sizes:
            assert str(p) in text
        assert "c=1" in text

    def test_dispatch(self, fig3a):
        assert chart_figure(fig3a) == chart_scaling(fig3a)

    def test_markers_for_each_series(self, fig3a):
        text = chart_scaling(fig3a)
        # c=1 (marker 'a') collapses: its marker appears well below 1.0.
        body = text.splitlines()
        low_rows = [ln for ln in body if ln.startswith((" 0.2", " 0.3"))]
        assert any("a" in ln or "*" in ln for ln in low_rows)


class TestChartsOnValidationRuns:
    def test_chart_of_event_sim_result(self):
        res = validate_figure(FIG2["2a"], p=16, n=512, cs=(1, 2))
        text = chart_figure(res)
        assert "c=1" in text and "c=2" in text

"""ASCII Gantt rendering of recorded timelines."""

import pytest

from repro.core import allpairs_config, cutoff_config, virtual_team_blocks
from repro.core.ca_step import ca_interaction_step
from repro.experiments import render_gantt
from repro.machines import GenericMachine, GenericTorus
from repro.physics import VirtualKernel
from repro.simmpi import Engine


def recorded_run(p=8, c=2, record=True, cutoff=False):
    if cutoff:
        cfg = cutoff_config(p, c, rcut=0.25, box_length=1.0, dim=1)
        kernel = VirtualKernel(dim=1)
    else:
        cfg = allpairs_config(p, c)
        kernel = VirtualKernel()
    blocks = virtual_team_blocks(512, cfg.grid.nteams)

    def program(comm):
        col = cfg.grid.col_of(comm.rank)
        lb = blocks[col] if cfg.grid.row_of(comm.rank) == 0 else None
        res = yield from ca_interaction_step(comm, cfg, kernel, lb)
        return res

    return Engine(GenericTorus(nranks=p, cores_per_node=2),
                  record_events=record).run(program)


class TestRenderGantt:
    def test_row_per_rank(self):
        res = recorded_run(p=8)
        text = render_gantt(res, width=40)
        assert text.count("rank") == 8
        assert "legend:" in text

    def test_requires_recording(self):
        res = recorded_run(record=False)
        with pytest.raises(ValueError, match="record_events"):
            render_gantt(res)

    def test_width_respected(self):
        res = recorded_run()
        text = render_gantt(res, width=25)
        for line in text.splitlines():
            if line.startswith("rank"):
                bar = line.split("|")[1]
                assert len(bar) == 25

    def test_max_ranks_truncation(self):
        res = recorded_run(p=12, c=2)
        text = render_gantt(res, width=30, max_ranks=4)
        rows = [ln for ln in text.splitlines() if ln.startswith("rank")]
        assert len(rows) == 4
        assert "more ranks not shown" in text

    def test_compute_glyphs_present(self):
        res = recorded_run()
        text = render_gantt(res, width=60)
        assert "#" in text

    def test_cutoff_boundary_ranks_show_transfers_waits(self):
        """Boundary ranks spend visible time not computing."""
        res = recorded_run(p=16, c=2, cutoff=True)
        text = render_gantt(res, width=60)
        bars = [ln.split("|")[1] for ln in text.splitlines()
                if ln.startswith("rank")]
        # Some rank has a mixed bar (compute + transfer/wait glyphs).
        assert any(("#" in b) and (("-" in b) or ("." in b)) for b in bars)

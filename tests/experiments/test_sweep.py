"""The resilient sweep harness: normalization, caching, quarantine, parity.

``repro.experiments.sweep`` is the ``repro sweep`` engine; its contract
is that a sweep's merged records do not depend on *how* they were
produced — serial, cached, or replayed from quarantine.  The spawning
chaos-parity legs (worker kills mid-sweep) live in
``tests/integration/test_parallel_harness.py`` and ``tools/host_chaos.py``;
here everything runs serially so the suite stays fast.
"""

import pytest

from repro.core.parallel import RetryPolicy
from repro.core.runcache import RunCache
from repro.experiments.sweep import (
    SWEEP_NAMESPACE,
    expand_grid,
    normalize_task,
    replay_quarantine,
    run_sweep,
    task_fingerprint,
)

ALLPAIRS = {"algorithm": "allpairs", "p": 4, "n": 16}


class TestNormalizeTask:
    def test_defaults_filled_in_fixed_order(self):
        d = normalize_task({"algorithm": "allpairs"})
        assert d["p"] == 16 and d["c"] == 1 and d["n"] == 64
        assert d["machine"] == "generic" and d["engine_tier"] == "event"
        assert d["rcut"] is None

    def test_equivalent_spellings_fingerprint_identically(self):
        a = task_fingerprint({"algorithm": "allpairs", "p": 8})
        b = task_fingerprint({"p": "8", "algorithm": "allpairs"})
        assert a == b
        assert a.startswith(SWEEP_NAMESPACE + ";")

    def test_different_configs_fingerprint_differently(self):
        a = task_fingerprint({"algorithm": "allpairs", "seed": 0})
        b = task_fingerprint({"algorithm": "allpairs", "seed": 1})
        assert a != b

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep descriptor"):
            normalize_task({"algorithm": "allpairs", "particels": 64})

    def test_missing_algorithm_rejected(self):
        with pytest.raises(ValueError, match="needs an 'algorithm'"):
            normalize_task({"p": 8})

    @pytest.mark.parametrize("bad", [
        {"algorithm": "allpairs", "machine": "cray"},
        {"algorithm": "allpairs", "engine_tier": "quantum"},
    ])
    def test_bad_enums_rejected(self, bad):
        with pytest.raises(ValueError):
            normalize_task(bad)


class TestExpandGrid:
    def test_cross_product_with_capability_clamping(self):
        tasks, skipped = expand_grid(
            ["allpairs", "particle_ring"], ps=(4,), cs=(1, 2), ns=(16,))
        by_alg = {}
        for t in tasks:
            by_alg.setdefault(t["algorithm"], []).append(t["c"])
        assert sorted(by_alg["allpairs"]) == [1, 2]
        # no replication knob -> one c=1 point, duplicates dropped
        assert by_alg["particle_ring"] == [1]
        assert not skipped

    def test_needs_rcut_skipped_with_reason(self):
        tasks, skipped = expand_grid(["cutoff"], ps=(4,), ns=(16,))
        assert tasks == []
        assert "cutoff" in skipped and "rcut" in skipped["cutoff"]

    def test_square_p_skipped_per_rank_count(self):
        tasks, skipped = expand_grid(
            ["force_decomposition"], ps=(8, 9), ns=(16,))
        assert all(t["p"] == 9 for t in tasks)
        assert "square rank count" in skipped["force_decomposition"]


class TestRunSweep:
    def test_serial_sweep_produces_records(self):
        report = run_sweep([ALLPAIRS])
        assert report.ok
        (o,) = report.outcomes
        assert o.status == "ok"
        assert o.value["forces"] is not None
        assert o.value["critical_messages"] > 0
        assert "task   0 [ok" in report.summary()

    def test_cold_then_warm_cache_serves_everything(self, tmp_path):
        tasks, _ = expand_grid(["allpairs", "symmetric"], ps=(4,), ns=(16,))
        cache = RunCache(str(tmp_path), namespace=SWEEP_NAMESPACE)
        cold = run_sweep(tasks, cache=cache)
        assert cold.ok and len(cold.computed) == len(tasks)
        warm = run_sweep(tasks, cache=cache)
        assert warm.ok and not warm.computed
        assert len(warm.cached) == len(tasks)
        assert all(o.attempts == 0 for o in warm.outcomes)
        # served values are the cold run's values, bitwise
        for a, b in zip(cold.outcomes, warm.outcomes):
            assert a.value == b.value
        assert "cached=2" in warm.summary()

    def test_partial_cache_resumes_only_misses(self, tmp_path):
        tasks, _ = expand_grid(["allpairs", "symmetric"], ps=(4,), ns=(16,))
        cache = RunCache(str(tmp_path), namespace=SWEEP_NAMESPACE)
        run_sweep([tasks[0]], cache=cache)  # pre-warm the first point only
        report = run_sweep(tasks, cache=cache)
        assert [o.status for o in report.outcomes] == ["cached", "ok"]
        assert [o.index for o in report.outcomes] == [0, 1]

    def test_corrupt_cache_entry_recomputed_not_served(self, tmp_path):
        cache = RunCache(str(tmp_path), namespace=SWEEP_NAMESPACE)
        cold = run_sweep([ALLPAIRS], cache=cache)
        path = cache.path_for(task_fingerprint(ALLPAIRS))
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) - 7])  # torn write
        again = run_sweep([ALLPAIRS], cache=cache)
        assert again.outcomes[0].status == "ok"  # recomputed, not cached
        assert cache.stats.evictions == 1
        assert again.outcomes[0].value == cold.outcomes[0].value

    def test_failed_tasks_quarantined_and_replayable(self, tmp_path):
        qpath = str(tmp_path / "quarantine.json")
        bad = dict(ALLPAIRS, algorithm="no_such_algorithm")
        report = run_sweep([ALLPAIRS, bad],
                           retry=RetryPolicy(max_attempts=2, base_delay=0.0),
                           quarantine=qpath)
        assert not report.ok
        assert report.quarantine == qpath
        assert report.outcomes[1].quarantined
        assert report.outcomes[1].attempts == 2
        # replay exactly the poisoned unit (fixed to a real algorithm it
        # would succeed; here it must fail again, proving the unit is
        # fed back unchanged)
        replayed = replay_quarantine(qpath)
        assert len(replayed.tasks) == 1
        assert replayed.tasks[0]["algorithm"] == "no_such_algorithm"
        assert not replayed.ok

    def test_sweep_never_raises_on_task_failure(self):
        report = run_sweep([dict(ALLPAIRS, algorithm="no_such_algorithm")])
        assert not report.ok
        assert report.outcomes[0].status == "failed"
        assert "no_such_algorithm" in report.outcomes[0].error
        assert "failed" in report.describe_task(0)


class TestCacheAccounting:
    """Locks the CacheStats contract: one lookup and at most one store
    per unique fingerprint, and a freshly stored entry is never re-read
    to serve its own batch (which would double-count it as a hit)."""

    DUP_BATCH = [ALLPAIRS, dict(ALLPAIRS), {"algorithm": "symmetric",
                                            "p": 4, "n": 16}]

    def test_cold_batch_with_duplicates_single_flights(self, tmp_path):
        cache = RunCache(str(tmp_path), namespace=SWEEP_NAMESPACE)
        report = run_sweep(self.DUP_BATCH, cache=cache)
        assert [o.status for o in report.outcomes] == [
            "ok", "coalesced", "ok"]
        # 2 unique fingerprints: exactly 2 lookups (all misses), 2
        # stores, and crucially ZERO hits — the duplicate was served
        # from the leader's in-memory result, not by re-reading the
        # entry the leader just stored.
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2
        assert cache.stats.stores == 2
        # single-flight shares the value bitwise and consumes no attempt
        assert report.outcomes[1].value == report.outcomes[0].value
        assert report.outcomes[1].attempts == 0
        assert report.outcomes[1].ok
        assert len(report.coalesced) == 1

    def test_warm_batch_with_duplicates_one_lookup_per_unique(self, tmp_path):
        cache = RunCache(str(tmp_path), namespace=SWEEP_NAMESPACE)
        run_sweep(self.DUP_BATCH, cache=cache)
        warm_cache = RunCache(str(tmp_path), namespace=SWEEP_NAMESPACE)
        warm = run_sweep(self.DUP_BATCH, cache=warm_cache)
        assert [o.status for o in warm.outcomes] == [
            "cached", "coalesced", "cached"]
        assert warm_cache.stats.hits == 2
        assert warm_cache.stats.misses == 0
        assert warm_cache.stats.stores == 0
        assert warm_cache.stats.hit_rate == 1.0
        assert warm.outcomes[1].value == warm.outcomes[0].value

    def test_duplicates_coalesce_without_a_cache_too(self):
        report = run_sweep([ALLPAIRS, dict(ALLPAIRS)])
        assert [o.status for o in report.outcomes] == ["ok", "coalesced"]
        assert report.outcomes[1].value == report.outcomes[0].value

    def test_failed_leader_fails_its_followers(self):
        bad = dict(ALLPAIRS, algorithm="no_such_algorithm")
        report = run_sweep([bad, dict(bad)])
        assert [o.status for o in report.outcomes] == ["failed", "failed"]
        assert report.outcomes[1].attempts == 0  # no second computation
        assert report.outcomes[1].error == report.outcomes[0].error

    def test_stats_surface_lookups_and_to_dict(self, tmp_path):
        cache = RunCache(str(tmp_path), namespace=SWEEP_NAMESPACE)
        run_sweep([ALLPAIRS], cache=cache)
        run_sweep([ALLPAIRS], cache=cache)
        snap = cache.stats.to_dict()
        assert snap == {"hits": 1, "misses": 1, "stores": 1,
                        "evictions": 0, "hit_rate": 0.5}
        assert cache.stats.lookups == 2


class TestCliSweep:
    def test_cold_then_expect_cached(self, tmp_path, capsys):
        from repro.cli import main

        cache = str(tmp_path / "cache")
        base = ["sweep", "--algorithms", "allpairs", "--ranks", "4",
                "--particles", "16", "--cache", cache]
        assert main(base) == 0
        assert main(base + ["--expect-cached"]) == 0
        out = capsys.readouterr().out
        assert "cached" in out

    def test_expect_cached_fails_cold(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["sweep", "--algorithms", "allpairs", "--ranks", "4",
                     "--particles", "16",
                     "--cache", str(tmp_path / "cache"),
                     "--expect-cached"]) == 1
        assert "NOT FULLY CACHED" in capsys.readouterr().err

    def test_out_json_and_skips(self, tmp_path, capsys):
        import json

        from repro.cli import main

        out_path = str(tmp_path / "records.json")
        assert main(["sweep", "--algorithms", "allpairs,cutoff",
                     "--ranks", "4", "--particles", "16",
                     "--out", out_path]) == 0
        data = json.load(open(out_path))
        assert data["format"] == "repro-sweep-v1"
        assert len(data["records"]) == 1
        assert data["records"][0]["status"] == "ok"
        assert data["records"][0]["critical_messages"] > 0
        assert "skipped cutoff" in capsys.readouterr().out

    def test_unknown_algorithm_exits_2(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--algorithms", "not_an_algorithm"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_expect_cached_without_cache_exits_2(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--algorithms", "allpairs", "--ranks", "4",
                     "--particles", "16", "--expect-cached"]) == 2
        assert "--expect-cached needs --cache" in capsys.readouterr().err

"""Regression guards for the engine fast path's pay-for-use tracing.

The substrate promises that observability is free when switched off:
``record_events=False`` (the default) must allocate zero
:class:`TimelineEvent` objects, and ``record_phases=False`` must route all
phase accounting through the shared no-op :class:`NullTrace` sink.  These
tests pin that contract so a future edit cannot quietly re-introduce
per-op allocation on the hot path.
"""

import numpy as np
import pytest

from repro.machines import GenericMachine, GenericTorus
from repro.simmpi import Engine, NullTrace
from repro.simmpi import engine as engine_mod
from repro.simmpi.tracing import TimelineEvent


def traced_program(comm):
    """Touches every event-producing op kind: compute, p2p, collective."""
    with comm.phase("work"):
        yield from comm.compute(1e-3 * (comm.rank + 1))
    with comm.phase("ring"):
        x = yield from comm.sendrecv(
            (comm.rank + 1) % comm.size, comm.rank, (comm.rank - 1) % comm.size
        )
    with comm.phase("sync"):
        yield from comm.barrier()
    return x


class _CountingEvent(TimelineEvent):
    """TimelineEvent that counts how many times it is constructed."""

    allocations = 0

    def __init__(self, *args, **kwargs):
        type(self).allocations += 1
        super().__init__(*args, **kwargs)


@pytest.fixture
def counting_events(monkeypatch):
    _CountingEvent.allocations = 0
    # The engine module resolves the class through its own global, so
    # patching that name intercepts every allocation site.
    monkeypatch.setattr(engine_mod, "TimelineEvent", _CountingEvent)
    return _CountingEvent


class TestRecordEventsGuard:
    def test_zero_event_allocations_when_recording_off(self, counting_events):
        res = Engine(GenericTorus(nranks=8, cores_per_node=2)).run(
            traced_program
        )
        assert res.events == []
        assert counting_events.allocations == 0

    def test_zero_event_allocations_on_slow_path_too(self, counting_events):
        Engine(GenericMachine(nranks=4), fast_path=False).run(traced_program)
        assert counting_events.allocations == 0

    def test_events_still_allocated_when_recording_on(self, counting_events):
        res = Engine(GenericMachine(nranks=4), record_events=True).run(
            traced_program
        )
        assert counting_events.allocations == len(res.events) > 0


class TestNullTraceSink:
    def test_phases_off_installs_shared_null_sink(self):
        eng = Engine(GenericMachine(nranks=4), record_phases=False)
        res = eng.run(traced_program)
        # Virtual time and results are unaffected by switching tracing off.
        ref = Engine(GenericMachine(nranks=4)).run(traced_program)
        assert res.results == ref.results
        assert res.elapsed == ref.elapsed
        # ... but no per-rank phase dictionaries were built.
        assert res.report.traces == []

    def test_null_trace_is_inert(self):
        t = NullTrace()
        sink = t.phase("anything")
        assert t.phase("other") is sink  # one shared sink object
        t.add_time("x", 1.0)
        t.add_send("x", 10)
        t.add_recv("x", 10)
        sink.seconds += 1.0  # the fast path accumulates onto the sink
        assert t.total_seconds == 0.0
        assert t.phases == {}


class TestMaxOpsDiagnostics:
    """The runaway-program guard names its offender (satellite fix)."""

    @pytest.mark.parametrize("fast_path", [True, False])
    def test_report_names_rank_phase_and_histogram(self, fast_path):
        from repro.simmpi import MaxOpsExceededError

        def runaway(comm):
            with comm.phase("spin"):
                while True:
                    yield from comm.compute(1e-9)

        with pytest.raises(MaxOpsExceededError) as ei:
            Engine(GenericMachine(nranks=2), max_ops=50,
                   fast_path=fast_path).run(runaway)
        err = ei.value
        assert err.rank in (0, 1)
        assert err.phase == "spin"
        assert err.histogram.get("compute", 0) > 0
        msg = str(err)
        assert "max_ops=50" in msg
        assert f"rank {err.rank}" in msg
        assert "'spin'" in msg
        assert "busiest ranks" in msg


class TestZeroCopyPayloads:
    """The simulated network moves payload objects by reference."""

    def test_p2p_array_payload_is_not_copied(self):
        sent = {}

        def program(comm):
            if comm.rank == 0:
                arr = np.arange(12.0)
                sent["arr"] = arr
                yield from comm.send(1, arr)
            elif comm.rank == 1:
                got = yield from comm.recv(0)
                sent["got"] = got
            return None

        Engine(GenericMachine(nranks=2)).run(program)
        assert sent["got"] is sent["arr"]
        assert np.shares_memory(sent["got"], sent["arr"])

    def test_bcast_delivers_the_root_object(self):
        seen = {}

        def program(comm):
            arr = np.ones(8) if comm.rank == 0 else None
            if comm.rank == 0:
                seen["root"] = arr
            got = yield from comm.bcast(arr, root=0)
            seen[comm.rank] = got
            return None

        Engine(GenericMachine(nranks=4)).run(program)
        for rank in range(4):
            assert np.shares_memory(seen[rank], seen["root"])

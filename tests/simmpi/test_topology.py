"""Replicated process grid and ring-shift helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machines import GenericMachine
from repro.simmpi import Engine, ReplicatedGrid, ring_shift


class TestReplicatedGrid:
    def test_shape(self):
        g = ReplicatedGrid(p=12, c=3)
        assert g.nteams == 4
        assert g.row_of(0) == 0 and g.col_of(0) == 0
        assert g.row_of(5) == 1 and g.col_of(5) == 1
        assert g.rank_at(2, 3) == 11

    def test_c_must_divide_p(self):
        with pytest.raises(ValueError):
            ReplicatedGrid(p=10, c=3)

    def test_c_bounds(self):
        with pytest.raises(ValueError):
            ReplicatedGrid(p=4, c=0)
        with pytest.raises(ValueError):
            ReplicatedGrid(p=4, c=8)

    def test_degenerate_c1(self):
        g = ReplicatedGrid(p=5, c=1)
        assert g.nteams == 5
        assert g.team_ranks(3) == [3]
        assert g.row_ranks(0) == [0, 1, 2, 3, 4]

    def test_degenerate_c_eq_p(self):
        g = ReplicatedGrid(p=4, c=4)
        assert g.nteams == 1
        assert g.team_ranks(0) == [0, 1, 2, 3]

    def test_team_and_row_ranks(self):
        g = ReplicatedGrid(p=12, c=3)
        assert g.team_ranks(1) == [1, 5, 9]
        assert g.row_ranks(2) == [8, 9, 10, 11]
        assert g.leader_of(2) == 2

    @given(pc=st.sampled_from([(6, 2), (12, 3), (16, 4), (9, 3), (24, 6)]))
    def test_rank_roundtrip(self, pc):
        p, c = pc
        g = ReplicatedGrid(p=p, c=c)
        for r in range(p):
            assert g.rank_at(g.row_of(r), g.col_of(r)) == r

    @given(pc=st.sampled_from([(6, 2), (12, 3), (16, 4), (8, 8)]))
    def test_teams_partition_ranks(self, pc):
        p, c = pc
        g = ReplicatedGrid(p=p, c=c)
        seen = set()
        for col in range(g.nteams):
            for r in g.team_ranks(col):
                assert r not in seen
                seen.add(r)
        assert seen == set(range(p))

    def test_out_of_range_indices(self):
        g = ReplicatedGrid(p=6, c=2)
        with pytest.raises(ValueError):
            g.rank_at(2, 0)
        with pytest.raises(ValueError):
            g.rank_at(0, 3)


class TestGridCommunicators:
    def test_team_comm_rank_is_row(self):
        g = ReplicatedGrid(p=12, c=3)

        def program(comm):
            team = g.team_comm(comm)
            row = g.row_comm(comm)
            return (team.rank, team.size, row.rank, row.size)
            yield  # pragma: no cover

        res = Engine(GenericMachine(nranks=12)).run(program).results
        for r in range(12):
            assert res[r] == (g.row_of(r), 3, g.col_of(r), 4)


class TestRingShift:
    @pytest.mark.parametrize("offset", [1, 2, -1, 3, 0])
    def test_shift_delivers_from_expected_rank(self, offset):
        def program(comm):
            got = yield from ring_shift(comm, comm.rank, offset)
            return got

        p = 6
        res = Engine(GenericMachine(nranks=p)).run(program).results
        for r in range(p):
            assert res[r] == (r - offset) % p

    def test_repeated_shifts_compose(self):
        def program(comm):
            x = comm.rank
            x = yield from ring_shift(comm, x, 2)
            x = yield from ring_shift(comm, x, 3)
            return x

        res = Engine(GenericMachine(nranks=7)).run(program).results
        assert res == [(r - 5) % 7 for r in range(7)]

"""Wire-size accounting of message payloads."""

import numpy as np

from repro.machines.base import PARTICLE_BYTES
from repro.physics import ParticleSet, TravelBlock, VirtualBlock
from repro.simmpi import payload_nbytes


class TestScalars:
    def test_none_is_free(self):
        assert payload_nbytes(None) == 0

    def test_bool(self):
        assert payload_nbytes(True) == 1

    def test_number(self):
        assert payload_nbytes(3) == 8
        assert payload_nbytes(2.5) == 8

    def test_string(self):
        assert payload_nbytes("abcd") == 4

    def test_bytes(self):
        assert payload_nbytes(b"12345") == 5

    def test_unknown_object_small(self):
        class Thing:
            pass

        assert payload_nbytes(Thing()) == 8


class TestArrays:
    def test_ndarray_true_size(self):
        a = np.zeros((10, 3))
        assert payload_nbytes(a) == 240

    def test_numpy_scalar(self):
        assert payload_nbytes(np.float64(1.0)) == 8

    def test_containers_sum(self):
        assert payload_nbytes([np.zeros(4), np.zeros(2)]) == 48
        assert payload_nbytes((1, 2.0)) == 16
        assert payload_nbytes({"k": np.zeros(3)}) == 1 + 24


class TestWireNbytesProtocol:
    def test_particle_set_uses_52_bytes(self):
        ps = ParticleSet.uniform_random(10, 2, 1.0)
        assert payload_nbytes(ps) == 10 * PARTICLE_BYTES

    def test_travel_block(self):
        ps = ParticleSet.uniform_random(7, 2, 1.0)
        tb = TravelBlock(pos=ps.pos, ids=ps.ids, team=0)
        assert payload_nbytes(tb) == 7 * PARTICLE_BYTES

    def test_virtual_block(self):
        assert payload_nbytes(VirtualBlock(count=100)) == 100 * PARTICLE_BYTES

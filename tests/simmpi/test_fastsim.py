"""The heuristic engine tier's agreement contract with the event engine.

``engine_tier="heuristic"`` (:mod:`repro.simmpi.fastsim`) batch-advances
whole phases with vectorized timestamp math instead of replaying every
message.  Its contract, pinned here:

* **traffic is exact** — per rank, per phase label, messages and bytes
  (sent and received) equal the event engine's to the integer, across
  the whole registry and off-pin configurations (replication, non-power-
  of-two team counts, torus machines, hardware collectives);
* **volumes match the committed lock** — the same
  ``benchmarks/METRICS_LOCK.json`` totals the event engine is gated on;
* **makespan is approximate but banded** — within a small constant
  factor of the event engine's virtual elapsed time;
* **metrics flow through the same projection** — including the
  ``kernel.pairs`` flop proxy;
* **incompatible features fail loudly** — faults, schedule perturbation,
  engine options name every problem and the fix;
* **it scales** — a p=1000 run completes as a smoke here (p=10^4 is
  locked via the committed benchmark artifact in
  ``tests/integration/test_bench_artifacts.py``).
"""

import json
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.core.runner import RunSpec, get_algorithm, list_algorithms, run
from repro.machines import GenericMachine, Hopper, Intrepid
from repro.metrics.registry import MetricsRegistry
from repro.simmpi.fastsim import heuristic_algorithms

PINNED = {"p": 16, "n": 64, "c": 2, "rcut": 0.3, "seed": 0}
LOCK_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / \
    "METRICS_LOCK.json"


def _spec(name, machine=None, **overrides):
    alg = get_algorithm(name)
    kw = dict(
        machine=machine or GenericMachine(nranks=PINNED["p"]),
        algorithm=name,
        n=overrides.pop("n", PINNED["n"]),
        c=(overrides.pop("c", PINNED["c"]) if alg.supports_c else 1),
        rcut=(overrides.pop("rcut", PINNED["rcut"])
              if alg.needs_rcut else None),
        seed=PINNED["seed"],
    )
    kw.update(overrides)
    return RunSpec(**kw)


def _traffic(report):
    """(rank, phase) -> (msgs sent, bytes sent, msgs recv, bytes recv)."""
    out = {}
    for tr in report.traces:
        for label, tot in tr.phases.items():
            out[(tr.rank, label)] = (
                tot.messages_sent, tot.bytes_sent,
                tot.messages_received, tot.bytes_received)
    return out


def _assert_tiers_agree(spec):
    event = run(spec)
    heur = run(replace(spec, engine_tier="heuristic"))
    assert _traffic(event.report) == _traffic(heur.report)
    if event.run.elapsed > 0:
        ratio = heur.run.elapsed / event.run.elapsed
        assert 1 / 3 <= ratio <= 3, f"makespan ratio {ratio} out of band"
    return event, heur


class TestTrafficParity:
    @pytest.mark.parametrize("name", sorted(list_algorithms()))
    def test_pinned_config(self, name):
        _assert_tiers_agree(_spec(name))

    @pytest.mark.parametrize("name, kw", [
        ("allpairs", {"c": 4}),
        ("symmetric", {"machine": GenericMachine(nranks=10), "c": 2}),
        ("symmetric", {"machine": GenericMachine(nranks=12), "c": 3}),
        ("allpairs", {"layout": "teams"}),
        ("cutoff", {"machine": GenericMachine(nranks=12), "c": 3}),
        ("particle_allgather", {"machine": GenericMachine(nranks=12)}),
        ("particle_ring", {"machine": GenericMachine(nranks=12)}),
        ("allpairs", {"machine": Hopper(16, cores_per_node=4)}),
        ("midpoint", {"machine": GenericMachine(nranks=9), "n": 128,
                      "rcut": 0.2}),
        ("spatial", {"machine": GenericMachine(nranks=9), "n": 128,
                     "rcut": 0.2}),
        ("cutoff", {"c": 2, "dim": 2}),
        ("cutoff", {"machine": GenericMachine(nranks=27), "n": 81,
                    "c": 1, "dim": 3}),
        ("systolic_ring", {"machine": GenericMachine(nranks=10), "c": 1}),
        ("half_systolic", {"machine": GenericMachine(nranks=9), "c": 1}),
        ("hyper_systolic", {"machine": GenericMachine(nranks=12), "c": 1,
                            "hyper_k": 6}),
    ])
    def test_off_pin_configs(self, name, kw):
        _assert_tiers_agree(_spec(name, **kw))

    def test_hardware_collectives(self):
        _assert_tiers_agree(_spec(
            "particle_allgather", machine=Intrepid(16, cores_per_node=4),
            use_tree=True))

    def test_every_registry_algorithm_has_a_builder(self):
        assert set(heuristic_algorithms()) == set(list_algorithms())


class TestLockVolumes:
    def test_heuristic_volumes_match_committed_lock(self):
        lock = json.loads(LOCK_PATH.read_text())
        assert lock["config"] == PINNED
        for name, want in sorted(lock["algorithms"].items()):
            report = run(_spec(name, engine_tier="heuristic")).report
            total_msgs = total_bytes = 0
            for tr in report.traces:
                for tot in tr.phases.values():
                    total_msgs += tot.messages_sent
                    total_bytes += tot.bytes_sent
            got = {
                "critical_messages": int(report.critical_messages()),
                "critical_bytes": int(report.critical_bytes()),
                "total_messages": int(total_msgs),
                "total_bytes": int(total_bytes),
            }
            assert got == want, f"{name} heuristic volume off the lock"


class TestMetricsProjection:
    @pytest.mark.parametrize("name", ["allpairs", "cutoff"])
    def test_kernel_pairs_matches_event_tier(self, name):
        vals = {}
        for tier in ("event", "heuristic"):
            metrics = MetricsRegistry()
            run(_spec(name, metrics=metrics, engine_tier=tier))
            vals[tier] = int(metrics.value("kernel.pairs"))
        assert vals["heuristic"] == vals["event"] > 0

    def test_comm_series_match_event_tier(self):
        series = {}
        for tier in ("event", "heuristic"):
            metrics = MetricsRegistry()
            run(_spec("allpairs", metrics=metrics, engine_tier=tier))
            series[tier] = {
                name: metrics.value(name)
                for name in ("comm.messages_sent", "comm.bytes_sent")
            }
        assert series["heuristic"] == series["event"]

    def test_no_ids_or_forces(self):
        out = run(_spec("allpairs", engine_tier="heuristic"))
        assert out.ids is None and out.forces is None


class TestLoudErrors:
    def test_unknown_tier(self):
        with pytest.raises(ValueError, match="unknown engine_tier"):
            run(_spec("allpairs", engine_tier="warp"))

    def test_schedule_perturbation_refused(self):
        with pytest.raises(ValueError) as err:
            run(_spec("allpairs", engine_tier="heuristic",
                      schedule="adversarial"))
        msg = str(err.value)
        assert "schedule=" in msg and "engine_tier='event'" in msg
        assert "docs/performance.md" in msg

    def test_engine_opts_refused(self):
        with pytest.raises(ValueError, match="engine_opts="):
            run(_spec("allpairs", engine_tier="heuristic",
                      engine_opts={"record_events": True}))

    def test_all_problems_listed_at_once(self):
        with pytest.raises(ValueError) as err:
            run(_spec("allpairs", engine_tier="heuristic",
                      schedule="random:1",
                      engine_opts={"record_events": True}))
        msg = str(err.value)
        assert "schedule=" in msg and "engine_opts=" in msg


class TestScale:
    def test_p_1000_completes(self):
        out = run(RunSpec(machine=GenericMachine(nranks=1000),
                          algorithm="allpairs", n=2000, c=4, seed=0,
                          engine_tier="heuristic"))
        assert len(out.run.clocks) == 1000
        assert out.run.elapsed > 0
        assert np.isfinite(out.run.elapsed)

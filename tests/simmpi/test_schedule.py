"""Schedule-perturbation policies: parsing, replay, and engine equivalence.

The policy contract (``docs/schedule-fuzzing.md``) is that every decision a
:class:`~repro.simmpi.schedule.SchedulePolicy` perturbs is one rendezvous
semantics leaves open — so any policy must leave every observable of a run
(results, clocks, makespan, traffic) bitwise unchanged, and the engine's
request free list and zero-copy payload paths must survive arbitrary
completion orders intact.
"""

from __future__ import annotations

from collections import deque

import numpy as np
import pytest

from repro.machines import GenericMachine
from repro.simmpi import Engine
from repro.simmpi.schedule import (
    AdversarialPolicy,
    FifoPolicy,
    RandomPolicy,
    SchedulePolicy,
    resolve_schedule,
)

_POLICY_SPECS = ["random:1", "random:2", "random:3", "adversarial",
                 "adversarial:7"]


class TestFromSpec:
    def test_fifo(self):
        assert isinstance(SchedulePolicy.from_spec("fifo"), FifoPolicy)

    def test_random_default_seed(self):
        pol = SchedulePolicy.from_spec("random")
        assert isinstance(pol, RandomPolicy)
        assert pol.seed == 0
        assert pol.spec == "random:0"

    def test_random_with_seed(self):
        pol = SchedulePolicy.from_spec("random:42")
        assert pol.seed == 42
        assert pol.spec == "random:42"

    def test_adversarial_seedless(self):
        pol = SchedulePolicy.from_spec("adversarial")
        assert isinstance(pol, AdversarialPolicy)
        assert pol.seed is None
        assert pol.spec == "adversarial"

    def test_adversarial_seeded(self):
        assert SchedulePolicy.from_spec("adversarial:9").seed == 9

    def test_policy_instance_passes_through(self):
        pol = RandomPolicy(5)
        assert SchedulePolicy.from_spec(pol) is pol

    def test_spec_round_trips(self):
        for spec in ["fifo"] + _POLICY_SPECS:
            pol = SchedulePolicy.from_spec(spec)
            again = SchedulePolicy.from_spec(pol.spec)
            assert type(again) is type(pol)
            assert again.seed == pol.seed

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule policy"):
            SchedulePolicy.from_spec("chaotic")

    def test_fifo_with_seed_rejected(self):
        with pytest.raises(ValueError, match="takes no seed"):
            SchedulePolicy.from_spec("fifo:1")

    def test_non_integer_seed_rejected(self):
        with pytest.raises(ValueError, match="must be an integer"):
            SchedulePolicy.from_spec("random:xyz")

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            SchedulePolicy.from_spec(42)

    def test_resolver_normalizes_fifo_to_fast_path(self):
        assert resolve_schedule(None) is None
        assert resolve_schedule("fifo") is None
        assert resolve_schedule(FifoPolicy()) is None
        assert isinstance(resolve_schedule("random:1"), RandomPolicy)


class TestPolicyStreams:
    def test_random_pop_replays_after_reset(self):
        pol = RandomPolicy(3)
        first = [pol.pop(deque(range(8))) for _ in range(20)]
        pol.reset()
        again = [pol.pop(deque(range(8))) for _ in range(20)]
        assert first == again

    def test_random_pop_preserves_the_rest_of_the_queue(self):
        pol = RandomPolicy(0)
        ready = deque(range(10))
        rank = pol.pop(ready)
        assert rank not in ready
        assert list(ready) == [r for r in range(10) if r != rank]

    def test_random_permute_is_a_permutation(self):
        pol = RandomPolicy(1)
        items = [("a", 1), ("b", 2), ("c", 3), ("d", 4)]
        out = pol.permute(items)
        assert sorted(out) == sorted(items)

    def test_adversarial_pops_newest_first(self):
        pol = AdversarialPolicy()
        ready = deque([4, 7, 2])
        assert pol.pop(ready) == 2
        assert pol.pop(ready) == 7

    def test_adversarial_permute_reverses(self):
        assert AdversarialPolicy().permute([1, 2, 3]) == [3, 2, 1]

    def test_adversarial_flips_posting_and_notification(self):
        pol = AdversarialPolicy()
        assert pol.reorder_posts()
        assert pol.unblock_receiver_first()

    def test_seeded_adversarial_mixes_but_replays(self):
        pol = AdversarialPolicy(7)
        first = [pol.pop(deque(range(8))) for _ in range(40)]
        pol.reset()
        assert first == [pol.pop(deque(range(8))) for _ in range(40)]
        # The mixture must actually escape pure LIFO sometimes.
        assert any(r != 7 for r in first)


def _mixed_traffic_program(comm):
    """P2p + sendrecv + software collectives + barrier, all interleaved."""
    rank, size = comm.rank, comm.size
    data = np.full(16, float(rank))
    right, left = (rank + 1) % size, (rank - 1) % size
    got = yield from comm.sendrecv(right, data, left, sendtag=1)
    total = yield from comm.allreduce(float(got[0]), lambda a, b: a + b)
    sreq = yield from comm.isend(right, (rank, total), tag=2)
    rreq = yield from comm.irecv(left, tag=2)
    yield from comm.wait(sreq, rreq)
    gathered = yield from comm.allgather(rreq.payload[1])
    yield from comm.barrier()
    return (float(total), tuple(gathered), float(got.sum()))


def _fingerprint(run):
    phases = {
        (tr.rank, label): (tot.seconds, tot.messages_sent, tot.bytes_sent,
                           tot.messages_received, tot.bytes_received)
        for tr in run.report.traces
        for label, tot in tr.phases.items()
    }
    return (run.results, tuple(run.clocks), run.elapsed, phases)


class TestEngineEquivalence:
    """Every policy must be observationally identical to FIFO."""

    @pytest.mark.parametrize("spec", _POLICY_SPECS)
    def test_mixed_traffic_is_schedule_independent(self, spec):
        baseline = Engine(GenericMachine(nranks=8)).run(
            _mixed_traffic_program)
        perturbed = Engine(GenericMachine(nranks=8), schedule=spec).run(
            _mixed_traffic_program)
        assert _fingerprint(perturbed) == _fingerprint(baseline)

    def test_explicit_fifo_matches_default(self):
        baseline = Engine(GenericMachine(nranks=8)).run(
            _mixed_traffic_program)
        fifo = Engine(GenericMachine(nranks=8), schedule="fifo").run(
            _mixed_traffic_program)
        assert _fingerprint(fifo) == _fingerprint(baseline)

    @pytest.mark.parametrize("spec", ["random:5", "adversarial"])
    def test_hardware_collective_requeue_order(self, spec):
        from repro.machines import Intrepid

        def program(comm):
            total = yield from comm.hw_coll("allreduce", comm.rank + 0.5,
                                            op=lambda a, b: a + b)
            yield from comm.barrier()
            return total

        base = Engine(Intrepid(8, cores_per_node=4)).run(program)
        got = Engine(Intrepid(8, cores_per_node=4), schedule=spec).run(program)
        assert _fingerprint(got) == _fingerprint(base)

    def test_same_policy_replays_bitwise(self):
        a = Engine(GenericMachine(nranks=8), schedule="random:11").run(
            _mixed_traffic_program)
        b = Engine(GenericMachine(nranks=8), schedule="random:11").run(
            _mixed_traffic_program)
        assert _fingerprint(a) == _fingerprint(b)


class TestPoolIntegrityUnderPerturbation:
    """Satellite: pooled request reuse must survive reordered completions."""

    def _churn_program(self, comm):
        # Many short-lived request pairs so the free list is exercised
        # heavily; ring neighbours keep every rank both sender and receiver.
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        for round_ in range(12):
            sreq = yield from comm.isend(right, (comm.rank, round_), tag=3)
            rreq = yield from comm.irecv(left, tag=3)
            yield from comm.wait(sreq, rreq)
            assert rreq.payload == (left, round_)
        yield from comm.barrier()
        return comm.rank

    @pytest.mark.parametrize("spec", _POLICY_SPECS)
    def test_pool_clean_after_perturbed_run(self, spec):
        engine = Engine(GenericMachine(nranks=8), schedule=spec)
        engine.run(self._churn_program)
        assert engine.check_invariants() == []
        # The churn actually fed the free list (reuse happened, not just
        # allocation), so the audit above inspected real pooled requests.
        assert engine._req_pool

    def test_engine_audit_runs_automatically_under_policy(self):
        # The perturbed-run audit is wired into Engine.run itself: breaking
        # an invariant after the fact is caught by a manual re-audit.
        engine = Engine(GenericMachine(nranks=8), schedule="adversarial")
        engine.run(self._churn_program)
        engine._req_pool[0].payload = np.zeros(4)  # simulate a leak
        problems = engine.check_invariants()
        assert problems and "retains a payload" in problems[0]


class TestZeroCopyUnderPerturbation:
    """Satellite: payload travel-by-reference holds in any completion order."""

    @pytest.mark.parametrize("spec", _POLICY_SPECS)
    def test_payloads_arrive_by_reference(self, spec):
        sent: dict[int, list] = {}

        def program(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            mine = [np.full(8, comm.rank + 10.0 * k) for k in range(4)]
            sent[comm.rank] = mine
            got = []
            for k, arr in enumerate(mine):
                sreq = yield from comm.isend(right, arr, tag=4 + k)
                rreq = yield from comm.irecv(left, tag=4 + k)
                yield from comm.wait(sreq, rreq)
                got.append(rreq.payload)
            yield from comm.barrier()
            return got

        result = Engine(GenericMachine(nranks=8), schedule=spec).run(program)
        for rank, got in enumerate(result.results):
            left = (rank - 1) % 8
            for k, arr in enumerate(got):
                # Identity, not just equality: the engine moved the
                # sender's array itself, no copy, and matched the right
                # channel despite the perturbed completion order.
                assert arr is sent[left][k]

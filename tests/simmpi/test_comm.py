"""Communicator handles: sub-communicators, tags, phases, hw collectives."""

import operator

import pytest

from repro.machines import GenericMachine, Intrepid
from repro.simmpi import Engine, InvalidRankError, InvalidTagError


def run(machine, program):
    return Engine(machine).run(program)


class TestSubCommunicators:
    def test_split_even_odd(self):
        def program(comm):
            mine = [r for r in range(comm.size) if r % 2 == comm.rank % 2]
            sub = comm.sub(mine)
            total = yield from sub.allreduce(comm.rank, operator.add)
            return (sub.rank, sub.size, total)

        res = run(GenericMachine(nranks=8), program).results
        assert res[0] == (0, 4, 0 + 2 + 4 + 6)
        assert res[1] == (0, 4, 1 + 3 + 5 + 7)
        assert res[6] == (3, 4, 12)

    def test_non_member_gets_none(self):
        def program(comm):
            sub = comm.sub([0, 1])
            if comm.rank < 2:
                v = yield from sub.allreduce(1, operator.add)
                return v
            assert sub is None
            return None
            yield  # pragma: no cover

        res = run(GenericMachine(nranks=4), program).results
        assert res == [2, 2, None, None]

    def test_sub_comm_rank_order_matters(self):
        def program(comm):
            sub = comm.sub([2, 0, 1])
            if sub is None:
                return None
            v = yield from sub.gather(comm.rank, root=0)
            return v

        res = run(GenericMachine(nranks=3), program).results
        assert res[2] == [2, 0, 1]  # communicator order, not world order

    def test_duplicate_ranks_rejected(self):
        def program(comm):
            comm.sub([0, 0, 1])
            return None
            yield  # pragma: no cover

        with pytest.raises(Exception):
            run(GenericMachine(nranks=3), program)

    def test_nested_subcommunicators(self):
        def program(comm):
            half = comm.sub(list(range(4))) if comm.rank < 4 else comm.sub(
                list(range(4, 8))
            )
            quarter_ranks = half.world_ranks[:2] if half.rank < 2 else half.world_ranks[2:]
            quarter = comm.sub(list(quarter_ranks))
            v = yield from quarter.allreduce(comm.rank, operator.add)
            return v

        res = run(GenericMachine(nranks=8), program).results
        assert res == [1, 1, 5, 5, 9, 9, 13, 13]

    def test_isolated_tag_spaces(self):
        """Same user tag on different communicators must not cross-match."""

        def program(comm):
            evens = comm.sub([0, 2])
            odds = comm.sub([1, 3])
            mine = evens if comm.rank % 2 == 0 else odds
            if mine.rank == 0:
                yield from mine.send(1, f"group{comm.rank % 2}", tag=5)
                return None
            v = yield from mine.recv(0, tag=5)
            return v

        res = run(GenericMachine(nranks=4), program).results
        assert res[2] == "group0"
        assert res[3] == "group1"


class TestIntrospection:
    def test_world_properties(self):
        def program(comm):
            return (comm.rank, comm.size, comm.world_rank, comm.is_world)
            yield  # pragma: no cover

        res = run(GenericMachine(nranks=3), program).results
        assert res == [(i, 3, i, True) for i in range(3)]

    def test_translate(self):
        def program(comm):
            sub = comm.sub([1, 2])
            if sub is None:
                return None
            return (sub.translate(0), sub.translate(1), sub.is_world)
            yield  # pragma: no cover

        res = run(GenericMachine(nranks=3), program).results
        assert res[1] == (1, 2, False)

    def test_translate_out_of_range(self):
        def program(comm):
            comm.translate(comm.size)
            return None
            yield  # pragma: no cover

        with pytest.raises(Exception):
            run(GenericMachine(nranks=2), program)


class TestTags:
    def test_tag_too_large_rejected(self):
        def program(comm):
            yield from comm.send(0, "x", tag=1 << 17)

        with pytest.raises((InvalidTagError, Exception)):
            run(GenericMachine(nranks=1), program)

    def test_negative_tag_rejected(self):
        def program(comm):
            yield from comm.send(0, "x", tag=-1)

        with pytest.raises(Exception):
            run(GenericMachine(nranks=1), program)


class TestPhases:
    def test_phase_attribution(self):
        def program(comm):
            with comm.phase("alpha"):
                yield from comm.compute(1e-3)
            with comm.phase("beta"):
                yield from comm.compute(2e-3)
            yield from comm.compute(4e-3)  # default phase
            return None

        res = run(GenericMachine(nranks=2), program)
        tr = res.report.traces[0]
        assert tr.phases["alpha"].seconds == pytest.approx(1e-3)
        assert tr.phases["beta"].seconds == pytest.approx(2e-3)
        assert tr.phases["other"].seconds == pytest.approx(4e-3)

    def test_phase_nesting_restores(self):
        def program(comm):
            with comm.phase("outer"):
                with comm.phase("inner"):
                    yield from comm.compute(1e-6)
                yield from comm.compute(2e-6)
            return comm.current_phase

        res = run(GenericMachine(nranks=1), program)
        assert res.results == ["other"]
        tr = res.report.traces[0]
        assert tr.phases["inner"].seconds == pytest.approx(1e-6)
        assert tr.phases["outer"].seconds == pytest.approx(2e-6)

    def test_phase_shared_across_communicators(self):
        """A sub-communicator collective inherits the enclosing phase."""

        def program(comm):
            sub = comm.sub(list(range(comm.size)))
            with comm.phase("coll"):
                yield from sub.allreduce(1, operator.add)
            return None

        res = run(GenericMachine(nranks=4), program)
        labels = res.report.phase_labels()
        assert labels == ["coll"]


class TestHwCollectives:
    def test_requires_machine_support(self):
        def program(comm):
            yield from comm.hw_coll("barrier")

        with pytest.raises((InvalidRankError, Exception)):
            run(GenericMachine(nranks=2), program)

    def test_requires_whole_partition(self):
        def program(comm):
            sub = comm.sub([0, 1])
            if sub is not None:
                yield from sub.hw_coll("barrier")
            return None

        with pytest.raises(Exception):
            run(Intrepid(4, cores_per_node=2), program)

    def test_hw_bcast_reduce_allgather(self):
        def program(comm):
            b = yield from comm.hw_coll("bcast", "root!" if comm.rank == 1 else None,
                                        root=1)
            r = yield from comm.hw_coll("reduce", comm.rank, root=0, op=operator.add)
            ag = yield from comm.hw_coll("allgather", comm.rank * 2)
            yield from comm.hw_coll("barrier")
            return (b, r, ag)

        res = run(Intrepid(4, cores_per_node=2), program).results
        assert all(r[0] == "root!" for r in res)
        assert res[0][1] == 6 and res[1][1] is None
        assert all(r[2] == [0, 2, 4, 6] for r in res)

    def test_hw_collective_synchronizes(self):
        def program(comm):
            yield from comm.compute(1e-3 * comm.rank)
            yield from comm.hw_coll("barrier")
            return comm.now()

        res = run(Intrepid(4, cores_per_node=2), program).results
        assert min(res) >= 3e-3

    def test_tree_disabled_machine(self):
        def program(comm):
            yield from comm.hw_coll("barrier")

        with pytest.raises(Exception):
            run(Intrepid(4, cores_per_node=2, tree=False), program)

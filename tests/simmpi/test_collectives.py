"""Software collectives vs. plain references, over many communicator sizes."""

import operator

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines import GenericMachine
from repro.simmpi import Engine

SIZES = [1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 32]


def run(p, program):
    return Engine(GenericMachine(nranks=p)).run(program)


class TestBcast:
    @pytest.mark.parametrize("p", SIZES)
    def test_all_ranks_receive(self, p):
        root = p // 2

        def program(comm):
            v = yield from comm.bcast("payload" if comm.rank == root else None, root)
            return v

        assert run(p, program).results == ["payload"] * p

    def test_numpy_payload(self):
        def program(comm):
            v = yield from comm.bcast(
                np.arange(10.0) if comm.rank == 0 else None, 0
            )
            return float(v.sum())

        assert run(6, program).results == [45.0] * 6

    def test_invalid_root(self):
        def program(comm):
            yield from comm.bcast(1, root=comm.size)

        with pytest.raises(Exception):
            run(4, program)


class TestReduce:
    @pytest.mark.parametrize("p", SIZES)
    @pytest.mark.parametrize("root", [0, "last"])
    def test_sum(self, p, root):
        r = p - 1 if root == "last" else 0

        def program(comm):
            v = yield from comm.reduce(comm.rank + 1, operator.add, r)
            return v

        res = run(p, program).results
        assert res[r] == p * (p + 1) // 2
        for i in range(p):
            if i != r:
                assert res[i] is None

    @pytest.mark.parametrize("p", SIZES)
    def test_array_sum_matches_numpy(self, p):
        vecs = [np.arange(4.0) * (i + 1) for i in range(p)]

        def program(comm):
            v = yield from comm.reduce(vecs[comm.rank], np.add, 0)
            return v

        got = run(p, program).results[0]
        assert np.allclose(got, np.sum(vecs, axis=0))


class TestAllreduce:
    @pytest.mark.parametrize("p", SIZES)
    def test_sum_everywhere(self, p):
        def program(comm):
            v = yield from comm.allreduce(comm.rank, operator.add)
            return v

        assert run(p, program).results == [p * (p - 1) // 2] * p

    @pytest.mark.parametrize("p", [2, 4, 8, 16])
    def test_non_commutative_op_consistent(self, p):
        """All ranks must agree even for non-commutative operations."""

        def program(comm):
            v = yield from comm.allreduce(f"[{comm.rank}]", operator.add)
            return v

        res = run(p, program).results
        assert len(set(res)) == 1
        # Every contribution appears exactly once.
        for i in range(p):
            assert res[0].count(f"[{i}]") == 1

    @pytest.mark.parametrize("p", [3, 5, 6, 9])
    def test_non_power_of_two_falls_back(self, p):
        def program(comm):
            v = yield from comm.allreduce(comm.rank + 0.5, operator.add)
            return v

        expect = sum(i + 0.5 for i in range(p))
        assert run(p, program).results == [pytest.approx(expect)] * p

    def test_min_operation(self):
        def program(comm):
            v = yield from comm.allreduce((comm.rank + 3) % comm.size, min)
            return v

        assert run(7, program).results == [0] * 7


class TestGatherScatter:
    @pytest.mark.parametrize("p", SIZES)
    def test_gather_order(self, p):
        root = p - 1

        def program(comm):
            v = yield from comm.gather(comm.rank**2, root)
            return v

        res = run(p, program).results
        assert res[root] == [i**2 for i in range(p)]
        assert all(res[i] is None for i in range(p) if i != root)

    @pytest.mark.parametrize("p", SIZES)
    def test_scatter_delivery(self, p):
        def program(comm):
            values = [f"item{i}" for i in range(p)] if comm.rank == 0 else None
            v = yield from comm.scatter(values, 0)
            return v

        assert run(p, program).results == [f"item{i}" for i in range(p)]

    @pytest.mark.parametrize("p", [3, 8])
    def test_scatter_nonzero_root(self, p):
        root = p - 1

        def program(comm):
            values = list(range(100, 100 + p)) if comm.rank == root else None
            v = yield from comm.scatter(values, root)
            return v

        assert run(p, program).results == list(range(100, 100 + p))

    def test_scatter_wrong_length_raises(self):
        def program(comm):
            yield from comm.scatter([1, 2] if comm.rank == 0 else None, 0)

        with pytest.raises(Exception):
            run(4, program)

    def test_gather_then_scatter_roundtrip(self):
        def program(comm):
            gathered = yield from comm.gather(comm.rank * 10, 0)
            back = yield from comm.scatter(gathered, 0)
            return back

        assert run(9, program).results == [i * 10 for i in range(9)]


class TestAllgatherAlltoall:
    @pytest.mark.parametrize("p", SIZES)
    def test_allgather(self, p):
        def program(comm):
            v = yield from comm.allgather(chr(ord("a") + comm.rank))
            return v

        expect = [chr(ord("a") + i) for i in range(p)]
        assert run(p, program).results == [expect] * p

    @pytest.mark.parametrize("p", SIZES)
    def test_alltoall_transpose(self, p):
        def program(comm):
            v = yield from comm.alltoall([(comm.rank, j) for j in range(p)])
            return v

        res = run(p, program).results
        for i in range(p):
            assert res[i] == [(j, i) for j in range(p)]

    def test_alltoall_wrong_length(self):
        def program(comm):
            yield from comm.alltoall([0])

        with pytest.raises(Exception):
            run(3, program)


class TestBarrier:
    @pytest.mark.parametrize("p", [1, 2, 5, 8])
    def test_barrier_synchronizes_clocks(self, p):
        def program(comm):
            yield from comm.compute(1e-6 * comm.rank)
            yield from comm.barrier()
            return comm.now()

        res = run(p, program).results
        # Nobody leaves the barrier before the slowest rank arrived.
        assert min(res) >= 1e-6 * (p - 1)


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(p=st.integers(1, 12), seed=st.integers(0, 1000))
    def test_allreduce_matches_serial_sum(self, p, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(-100, 100, size=p).tolist()

        def program(comm):
            v = yield from comm.allreduce(values[comm.rank], operator.add)
            return v

        assert run(p, program).results == [sum(values)] * p

    @settings(max_examples=25, deadline=None)
    @given(p=st.integers(1, 12), root=st.integers(0, 11))
    def test_bcast_from_any_root(self, p, root):
        root = root % p

        def program(comm):
            v = yield from comm.bcast(
                ("data", root) if comm.rank == root else None, root
            )
            return v

        assert run(p, program).results == [("data", root)] * p

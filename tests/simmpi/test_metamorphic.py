"""Metamorphic validation of the engine against a sequential reference.

Hypothesis generates random SPMD communication programs from a small DSL
(ring shifts, pairwise exchanges, broadcasts, reductions, local updates);
each program is executed twice:

* by the :class:`~repro.simmpi.Engine` (coroutines, matching, virtual
  clocks), and
* by a trivially-correct sequential interpreter that evaluates the same
  operations rank by rank with plain Python data structures.

The per-rank results must be identical.  This guards the engine's delivery
semantics (ordering, matching, collectives) independently of any timing
concerns.
"""

from __future__ import annotations

import operator

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines import GenericMachine
from repro.simmpi import Engine

# --- the DSL ----------------------------------------------------------------
# A program is a list of ops, executed by every rank in order:
#   ("shift", offset)          x <- value from rank (rank - offset) % p
#   ("xor", mask)              exchange x with rank ^ mask (if valid)
#   ("bcast", root)            x <- root's x
#   ("allreduce",)             x <- sum over ranks of x
#   ("gather_scatter", root)   x <- reversed gather redistributed
#   ("mix", k)                 x <- (x * 31 + rank + k) % 101     (local)


def op_strategy(p):
    return st.one_of(
        st.tuples(st.just("shift"), st.integers(-p, p)),
        st.tuples(st.just("xor"), st.sampled_from(
            [1 << i for i in range(max(1, p.bit_length()))])),
        st.tuples(st.just("bcast"), st.integers(0, p - 1)),
        st.tuples(st.just("allreduce")),
        st.tuples(st.just("gather_scatter"), st.integers(0, p - 1)),
        st.tuples(st.just("mix"), st.integers(0, 50)),
    )


def reference_execute(p, ops):
    """Sequential interpreter: a list of per-rank values, op by op."""
    xs = list(range(p))
    for op in ops:
        kind = op[0]
        if kind == "shift":
            off = op[1]
            xs = [xs[(r - off) % p] for r in range(p)]
        elif kind == "xor":
            mask = op[1]
            ys = list(xs)
            for r in range(p):
                partner = r ^ mask
                if partner < p:
                    ys[r] = xs[partner]
            xs = ys
        elif kind == "bcast":
            xs = [xs[op[1]]] * p
        elif kind == "allreduce":
            total = sum(xs)
            xs = [total] * p
        elif kind == "gather_scatter":
            root = op[1]
            gathered = list(xs)[::-1]
            xs = gathered
        elif kind == "mix":
            xs = [(x * 31 + r + op[1]) % 101 for r, x in enumerate(xs)]
    return xs


def engine_program(ops):
    def program(comm):
        p = comm.size
        x = comm.rank
        for op in ops:
            kind = op[0]
            if kind == "shift":
                off = op[1]
                x = yield from comm.sendrecv(
                    (comm.rank + off) % p, x, (comm.rank - off) % p
                )
            elif kind == "xor":
                mask = op[1]
                partner = comm.rank ^ mask
                if partner < p:
                    sreq = yield from comm.isend(partner, x, tag=1)
                    rreq = yield from comm.irecv(partner, tag=1)
                    _, x = yield from comm.wait(sreq, rreq)
            elif kind == "bcast":
                x = yield from comm.bcast(x if comm.rank == op[1] else None,
                                          op[1])
            elif kind == "allreduce":
                x = yield from comm.allreduce(x, operator.add)
            elif kind == "gather_scatter":
                root = op[1]
                gathered = yield from comm.gather(x, root)
                values = gathered[::-1] if comm.rank == root else None
                x = yield from comm.scatter(values, root)
            elif kind == "mix":
                x = (x * 31 + comm.rank + op[1]) % 101
        return x

    return program


class TestMetamorphic:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data(), p=st.integers(2, 9))
    def test_engine_matches_reference(self, data, p):
        ops = data.draw(st.lists(op_strategy(p), min_size=1, max_size=8))
        expected = reference_execute(p, ops)
        res = Engine(GenericMachine(nranks=p)).run(engine_program(ops))
        assert res.results == expected

    @settings(max_examples=20, deadline=None)
    @given(data=st.data(), p=st.integers(2, 6))
    def test_eager_protocol_same_results(self, data, p):
        """Protocol choice changes timings, never data."""
        ops = data.draw(st.lists(op_strategy(p), min_size=1, max_size=6))
        expected = reference_execute(p, ops)
        res = Engine(GenericMachine(nranks=p),
                     eager_threshold=1 << 30).run(engine_program(ops))
        assert res.results == expected

    @settings(max_examples=15, deadline=None)
    @given(data=st.data(), p=st.integers(2, 6))
    def test_determinism_across_runs(self, data, p):
        ops = data.draw(st.lists(op_strategy(p), min_size=1, max_size=6))
        eng = Engine(GenericMachine(nranks=p))
        r1 = eng.run(engine_program(ops))
        r2 = eng.run(engine_program(ops))
        assert r1.results == r2.results
        assert r1.clocks == r2.clocks

"""Per-pair traffic matrices (optional engine recording)."""

import numpy as np
import pytest

from repro.core import allpairs_config, virtual_team_blocks
from repro.core.ca_step import ca_interaction_step
from repro.machines import GenericMachine
from repro.physics import VirtualKernel
from repro.simmpi import Engine


def ca_program(cfg, kernel, blocks):
    def program(comm):
        col = cfg.grid.col_of(comm.rank)
        lb = blocks[col] if cfg.grid.row_of(comm.rank) == 0 else None
        res = yield from ca_interaction_step(comm, cfg, kernel, lb)
        return res

    return program


class TestTrafficRecording:
    def test_disabled_by_default(self):
        def program(comm):
            yield from comm.barrier()
            return None

        res = Engine(GenericMachine(nranks=4)).run(program)
        assert res.traffic is None

    def test_matrix_shape_and_totals(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, b"x" * 300)
                yield from comm.send(2, b"y" * 200)
            elif comm.rank == 1:
                yield from comm.recv(0)
            elif comm.rank == 2:
                yield from comm.recv(0)
            return None

        res = Engine(GenericMachine(nranks=3), record_traffic=True).run(program)
        t = res.traffic
        assert t.shape == (3, 3)
        assert t[0, 1] == 300 and t[0, 2] == 200
        assert t.sum() == 500

    def test_matches_trace_totals(self):
        cfg = allpairs_config(8, 2)
        blocks = virtual_team_blocks(512, cfg.grid.nteams)
        res = Engine(GenericMachine(nranks=8), record_traffic=True).run(
            ca_program(cfg, VirtualKernel(), blocks)
        )
        per_rank_sent = res.traffic.sum(axis=1)
        for r in range(8):
            from_trace = sum(ph.bytes_sent
                             for ph in res.report.traces[r].phases.values())
            assert per_rank_sent[r] == from_trace

    def test_ca_shift_traffic_is_sparse_and_structured(self):
        """Each rank talks to O(1) partners per phase — the locality the
        CA algorithm is designed around."""
        cfg = allpairs_config(16, 4)
        blocks = virtual_team_blocks(1024, cfg.grid.nteams)
        res = Engine(GenericMachine(nranks=16), record_traffic=True).run(
            ca_program(cfg, VirtualKernel(), blocks)
        )
        partners = (res.traffic > 0).sum(axis=1)
        assert partners.max() <= 4  # shifts + tree edges, never broadcast-all

    def test_c1_traffic_is_a_pure_ring(self):
        cfg = allpairs_config(8, 1)
        blocks = virtual_team_blocks(512, 8)
        res = Engine(GenericMachine(nranks=8), record_traffic=True).run(
            ca_program(cfg, VirtualKernel(), blocks)
        )
        t = res.traffic
        # Shifts move blocks one column westward (the direction convention
        # of the schedule); every rank has exactly one partner.
        for r in range(8):
            nonzero = list(np.nonzero(t[r])[0])
            assert nonzero == [(r - 1) % 8]

    def test_symmetric_total_volume(self):
        """Total bytes sent equals total bytes received (conservation)."""
        cfg = allpairs_config(12, 3)
        blocks = virtual_team_blocks(600, cfg.grid.nteams)
        res = Engine(GenericMachine(nranks=12), record_traffic=True).run(
            ca_program(cfg, VirtualKernel(), blocks)
        )
        received = sum(ph.bytes_received
                       for tr in res.report.traces
                       for ph in tr.phases.values())
        assert res.traffic.sum() == received

"""Per-phase time and traffic accounting."""

import pytest

from repro.machines import GenericMachine
from repro.simmpi import Engine
from repro.simmpi.tracing import PhaseTotals, RankTrace, TraceReport


class TestRankTrace:
    def test_accumulation(self):
        tr = RankTrace(0)
        tr.add_time("shift", 1.0)
        tr.add_time("shift", 0.5)
        tr.add_send("shift", 100)
        tr.add_recv("shift", 80)
        ph = tr.phases["shift"]
        assert ph.seconds == 1.5
        assert ph.messages_sent == 1
        assert ph.bytes_received == 80
        assert tr.total_seconds == 1.5

    def test_merge(self):
        a, b = PhaseTotals(seconds=1.0, bytes_sent=10), PhaseTotals(seconds=2.0)
        a.merge(b)
        assert a.seconds == 3.0 and a.bytes_sent == 10


class TestTraceReport:
    def _report(self):
        t0 = RankTrace(0)
        t0.add_time("shift", 2.0)
        t0.add_send("shift", 100)
        t1 = RankTrace(1)
        t1.add_time("shift", 1.0)
        t1.add_time("reduce", 4.0)
        t1.add_send("reduce", 500)
        return TraceReport([t0, t1])

    def test_max_and_mean(self):
        rep = self._report()
        assert rep.max_time("shift") == 2.0
        assert rep.mean_time("shift") == 1.5
        assert rep.max_time("reduce") == 4.0
        assert rep.max_time("nothing") == 0.0

    def test_traffic(self):
        rep = self._report()
        assert rep.max_messages("shift") == 1
        assert rep.max_bytes("reduce") == 500
        assert rep.total_messages() == 2
        assert rep.total_bytes() == 600
        assert rep.critical_messages() == 1
        assert rep.critical_bytes() == 500

    def test_breakdown_preserves_order(self):
        rep = self._report()
        assert list(rep.breakdown()) == ["shift", "reduce"]

    def test_summary_renders(self):
        text = self._report().summary()
        assert "shift" in text and "reduce" in text


class TestEngineCounters:
    def test_message_and_byte_counts(self):
        m = GenericMachine(nranks=2)

        def program(comm):
            with comm.phase("x"):
                if comm.rank == 0:
                    yield from comm.send(1, b"a" * 100)
                    yield from comm.send(1, b"b" * 50)
                else:
                    yield from comm.recv(0)
                    yield from comm.recv(0)
            return None

        rep = Engine(m).run(program).report
        assert rep.traces[0].phases["x"].messages_sent == 2
        assert rep.traces[0].phases["x"].bytes_sent == 150
        assert rep.traces[1].phases["x"].messages_received == 2
        assert rep.traces[1].phases["x"].bytes_received == 150

    def test_wait_time_charged_to_waiting_phase(self):
        m = GenericMachine(nranks=2, alpha=0.0, beta=0.0)

        def program(comm):
            if comm.rank == 0:
                yield from comm.compute(1e-3)
                with comm.phase("send"):
                    yield from comm.send(1, "x")
            else:
                with comm.phase("wait"):
                    yield from comm.recv(0)
            return None

        rep = Engine(m).run(program).report
        # Rank 1 waited ~1 ms for rank 0's late send.
        assert rep.traces[1].phases["wait"].seconds == pytest.approx(1e-3)

"""Engine edge cases: eager protocol details, stress patterns, error paths."""

import operator

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines import GenericMachine, GenericTorus, Intrepid
from repro.simmpi import DeadlockError, Engine, SimMPIError


class TestEagerProtocol:
    def test_threshold_boundary(self):
        """Messages at the threshold are eager; one byte over, rendezvous."""
        m = GenericMachine(nranks=2, alpha=1e-6, beta=1e-9)

        def program(nbytes):
            def body(comm):
                if comm.rank == 0:
                    yield from comm.send(1, b"z" * nbytes)
                    return comm.now()
                yield from comm.compute(1e-3)
                yield from comm.recv(0)
                return comm.now()

            return body

        eager = Engine(m, eager_threshold=100).run(program(100))
        assert eager.results[0] == pytest.approx(0.0)  # buffered
        rdv = Engine(m, eager_threshold=100).run(program(101))
        assert rdv.results[0] >= 1e-3  # waited for the receiver

    def test_eager_ring_of_blocking_sends_completes(self):
        """The classic deadlock pattern is legal under the eager protocol."""

        def program(comm):
            yield from comm.send((comm.rank + 1) % comm.size, "x")
            v = yield from comm.recv((comm.rank - 1) % comm.size)
            return v

        res = Engine(GenericMachine(nranks=4), eager_threshold=1 << 20).run(program)
        assert res.results == ["x"] * 4

    def test_eager_recv_still_waits_for_data(self):
        m = GenericMachine(nranks=2, alpha=1e-6, beta=1e-9)

        def program(comm):
            if comm.rank == 0:
                yield from comm.compute(5e-4)  # late sender
                yield from comm.send(1, b"q" * 1000)
                return None
            yield from comm.recv(0)
            return comm.now()

        res = Engine(m, eager_threshold=1 << 20).run(program)
        assert res.results[1] >= 5e-4 + 1e-6


class TestStressPatterns:
    def test_many_outstanding_requests(self):
        def program(comm):
            if comm.rank == 0:
                reqs = []
                for i in range(100):
                    r = yield from comm.isend(1, i, tag=i % 8)
                    reqs.append(r)
                yield from comm.wait(*reqs)
                return None
            reqs = []
            for i in range(100):
                r = yield from comm.irecv(0, tag=i % 8)
                reqs.append(r)
            vals = yield from comm.wait(*reqs)
            return sum(vals)

        res = Engine(GenericMachine(nranks=2)).run(program)
        assert res.results[1] == sum(range(100))

    def test_all_to_all_pairwise_storm(self):
        p = 12

        def program(comm):
            vals = yield from comm.alltoall(list(range(p)))
            total = yield from comm.allreduce(sum(vals), operator.add)
            return total

        res = Engine(GenericMachine(nranks=p)).run(program)
        assert res.results == [p * p * (p - 1) // 2] * p

    def test_interleaved_subcommunicator_traffic(self):
        """Row and column communicators exchanging simultaneously."""
        p = 16

        def program(comm):
            row = comm.sub([r for r in range(p) if r // 4 == comm.rank // 4])
            col = comm.sub([r for r in range(p) if r % 4 == comm.rank % 4])
            a = yield from row.allreduce(comm.rank, operator.add)
            b = yield from col.allreduce(comm.rank, operator.add)
            return (a, b)

        res = Engine(GenericMachine(nranks=p)).run(program)
        for r in range(p):
            i, j = divmod(r, 4)
            assert res.results[r] == (sum(4 * i + k for k in range(4)),
                                      sum(4 * k + j for k in range(4)))

    @settings(max_examples=15, deadline=None)
    @given(p=st.integers(2, 10), shifts=st.lists(st.integers(-5, 5),
                                                 min_size=1, max_size=6))
    def test_random_shift_sequences_compose(self, p, shifts):
        from repro.simmpi import ring_shift

        def program(comm):
            x = comm.rank
            for off in shifts:
                x = yield from ring_shift(comm, x, off)
            return x

        res = Engine(GenericMachine(nranks=p)).run(program)
        total = sum(shifts)
        assert res.results == [(r - total) % p for r in range(p)]


class TestErrorPaths:
    def test_mismatched_hw_collective_kinds(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.hw_coll("barrier")
            else:
                yield from comm.hw_coll("allreduce", 1, op=operator.add)

        with pytest.raises(Exception):
            Engine(Intrepid(2, cores_per_node=2)).run(program)

    def test_partial_participation_deadlocks(self):
        def program(comm):
            if comm.rank == 0:
                v = yield from comm.allreduce(1, operator.add)
                return v
            return None
            yield  # pragma: no cover

        with pytest.raises(DeadlockError):
            Engine(GenericMachine(nranks=3)).run(program)

    def test_wrong_collective_order_detected_as_deadlock(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.bcast("x", root=0)
                yield from comm.barrier()
            else:
                yield from comm.barrier()
                yield from comm.bcast(None, root=0)
            return None

        with pytest.raises(DeadlockError):
            Engine(GenericMachine(nranks=2)).run(program)

    def test_exception_inside_phase_context(self):
        def program(comm):
            with comm.phase("boom"):
                yield from comm.compute(1e-6)
                raise ValueError("inside phase")

        with pytest.raises(Exception, match="inside phase"):
            Engine(GenericMachine(nranks=1)).run(program)


class TestContextIds:
    def test_same_tuple_same_id(self):
        eng = Engine(GenericMachine(nranks=4))
        a = eng.context_id((0, 1))
        b = eng.context_id((0, 1))
        c = eng.context_id((1, 0))
        assert a == b
        assert a != c

    def test_run_resets_context_registry(self):
        eng = Engine(GenericMachine(nranks=2))

        def program(comm):
            sub = comm.sub([0, 1])
            v = yield from sub.allreduce(1, operator.add)
            return v

        r1 = eng.run(program)
        r2 = eng.run(program)
        assert r1.results == r2.results == [2, 2]


class TestVirtualTimeInvariants:
    @settings(max_examples=10, deadline=None)
    @given(p=st.integers(2, 8), seed=st.integers(0, 100))
    def test_clocks_nonnegative_and_bounded_by_elapsed(self, p, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        delays = rng.uniform(0, 1e-4, size=p).tolist()

        def program(comm):
            yield from comm.compute(delays[comm.rank])
            yield from comm.barrier()
            v = yield from comm.allreduce(comm.rank, operator.add)
            return v

        res = Engine(GenericTorus(nranks=p, cores_per_node=1)).run(program)
        assert all(0 <= c <= res.elapsed + 1e-15 for c in res.clocks)
        assert res.elapsed >= max(delays)

"""Cartesian communicators."""

import numpy as np
import pytest

from repro.machines import GenericMachine
from repro.simmpi import Engine
from repro.simmpi.cart import PROC_NULL, CartComm


def run(p, program):
    return Engine(GenericMachine(nranks=p)).run(program)


class TestTopology:
    def test_create_validates_size(self):
        def program(comm):
            CartComm.create(comm, (2, 3))
            return None
            yield  # pragma: no cover

        with pytest.raises(Exception):
            run(4, program)

    def test_coords_roundtrip(self):
        def program(comm):
            cart = CartComm.create(comm, (2, 3))
            assert cart.rank_of(cart.coords) == comm.rank
            return cart.coords
            yield  # pragma: no cover

        res = run(6, program)
        assert res.results == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_shift_interior_and_edges(self):
        def program(comm):
            cart = CartComm.create(comm, (4,), periods=False)
            return cart.shift(0, 1)
            yield  # pragma: no cover

        res = run(4, program)
        assert res.results[0] == (PROC_NULL, 1)
        assert res.results[1] == (0, 2)
        assert res.results[3] == (2, PROC_NULL)

    def test_periodic_shift_wraps(self):
        def program(comm):
            cart = CartComm.create(comm, (4,), periods=True)
            return cart.shift(0, 1)
            yield  # pragma: no cover

        res = run(4, program)
        assert res.results[0] == (3, 1)
        assert res.results[3] == (2, 0)

    def test_neighbors_2d(self):
        def program(comm):
            cart = CartComm.create(comm, (3, 3), periods=False)
            return cart.neighbors()
            yield  # pragma: no cover

        res = run(9, program)
        assert res.results[4] == [1, 3, 5, 7]  # interior: 4 faces
        assert res.results[0] == [1, 3]  # corner: 2 faces

    def test_mixed_periodicity(self):
        def program(comm):
            cart = CartComm.create(comm, (2, 2), periods=(True, False))
            return cart.neighbors()
            yield  # pragma: no cover

        res = run(4, program)
        # Axis 0 periodic with dim 2: +1 and -1 reach the same rank.
        assert res.results[0] == [1, 2]


class TestCommunication:
    def test_shift_exchange_ring(self):
        def program(comm):
            cart = CartComm.create(comm, (5,), periods=True)
            got = yield from cart.shift_exchange(0, comm.rank)
            return got

        res = run(5, program)
        assert res.results == [(r - 1) % 5 for r in range(5)]

    def test_shift_exchange_edge_gets_none(self):
        def program(comm):
            cart = CartComm.create(comm, (3,), periods=False)
            got = yield from cart.shift_exchange(0, comm.rank)
            return got

        res = run(3, program)
        assert res.results[0] is None
        assert res.results[1] == 0 and res.results[2] == 1

    def test_halo_pattern_2d(self):
        """A 2-D halo exchange via per-axis shift_exchange."""

        def program(comm):
            cart = CartComm.create(comm, (2, 4), periods=True)
            left = yield from cart.shift_exchange(1, comm.rank, disp=1)
            up = yield from cart.shift_exchange(0, comm.rank, disp=1)
            return (left, up)

        res = run(8, program)
        for r in range(8):
            i, j = divmod(r, 4)
            assert res.results[r][0] == i * 4 + (j - 1) % 4
            assert res.results[r][1] == ((i - 1) % 2) * 4 + j

    def test_sub_cart_rows(self):
        def program(comm):
            cart = CartComm.create(comm, (2, 3))
            row = cart.sub_cart((1,))
            total = yield from row.comm.allreduce(comm.rank, lambda a, b: a + b)
            return (row.dims, total)

        res = run(6, program)
        assert res.results[0] == ((3,), 0 + 1 + 2)
        assert res.results[5] == ((3,), 3 + 4 + 5)

    def test_sub_cart_preserves_periodicity(self):
        def program(comm):
            cart = CartComm.create(comm, (2, 2), periods=(True, False))
            col = cart.sub_cart((0,))
            return col.periods
            yield  # pragma: no cover

        res = run(4, program)
        assert res.results[0] == (True,)

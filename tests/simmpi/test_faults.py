"""Engine-level fault injection: schedules, kills, drops, corruption."""

import numpy as np
import pytest

from repro.machines import GenericMachine, Intrepid
from repro.simmpi import (
    CorruptTransfer,
    DeadlockError,
    DelayTransfer,
    DropTransfer,
    Engine,
    FaultSchedule,
    KillRank,
    Tombstone,
    TransferTimeoutError,
)
from repro.simmpi.collectives import binomial_fold
from repro.simmpi.tracing import RETRY_PHASE

pytestmark = pytest.mark.faults


def run(machine, program, faults=None, **kw):
    return Engine(machine, faults=faults, **kw).run(program)


def ring_program(comm):
    x = comm.rank
    for _ in range(4):
        x = yield from comm.sendrecv(
            (comm.rank + 1) % comm.size, x, (comm.rank - 1) % comm.size
        )
    return x


class TestScheduleValidation:
    def test_kill_needs_exactly_one_trigger(self):
        with pytest.raises(ValueError):
            KillRank(0)
        with pytest.raises(ValueError):
            KillRank(0, at_time=1.0, after_ops=3)

    def test_duplicate_kill_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule(events=(KillRank(0, after_ops=1),
                                  KillRank(0, at_time=1.0)))

    def test_unknown_event_rejected(self):
        with pytest.raises(TypeError):
            FaultSchedule(events=("boom",))


class TestPurity:
    """Fault decisions are pure functions of (schedule, operation id)."""

    def test_p2p_fault_is_pure(self):
        sched = FaultSchedule(seed=7, drop_prob=0.4, delay_prob=0.4,
                              corrupt_prob=0.2)
        for seq in range(8):
            assert sched.p2p_fault(0, 1, seq) == sched.p2p_fault(0, 1, seq)

    def test_channel_rng_independent_of_order(self):
        sched = FaultSchedule(seed=3)
        a = sched.channel_rng(0, 1, 0).random(4)
        sched.channel_rng(5, 6, 2).random(4)  # interleaved other channel
        b = sched.channel_rng(0, 1, 0).random(4)
        assert np.array_equal(a, b)

    def test_p2p_fault_independent_of_interleaving(self):
        """Fault decisions depend only on (src, dst, seq), never on the
        order the engine happens to evaluate channels in."""
        sched = FaultSchedule(seed=13, drop_prob=0.3, delay_prob=0.3,
                              corrupt_prob=0.3)
        channels = [(s, d, q) for s in range(3) for d in range(3)
                    for q in range(4) if s != d]
        forward = [sched.p2p_fault(*ch) for ch in channels]
        backward = [sched.p2p_fault(*ch) for ch in reversed(channels)]
        assert forward == list(reversed(backward))

    def test_distinct_channels_get_distinct_streams(self):
        sched = FaultSchedule(seed=3)
        draws = {(s, d, q): tuple(sched.channel_rng(s, d, q).random(2))
                 for s in (0, 1) for d in (2, 3) for q in (0, 1)}
        assert len(set(draws.values())) == len(draws)

    def test_killed_ranks_property(self):
        sched = FaultSchedule(events=(KillRank(5, after_ops=1),
                                      KillRank(2, at_time=1.0),
                                      DropTransfer(0, 1)))
        assert sched.killed_ranks == (2, 5)
        assert FaultSchedule().killed_ranks == ()

    def test_should_die_threshold(self):
        sched = FaultSchedule(events=(KillRank(2, after_ops=5),))
        assert not sched.should_die(2, 4, 0.0)
        assert sched.should_die(2, 5, 0.0)
        assert not sched.should_die(1, 99, 0.0)


class TestDelayAndDrop:
    def test_empty_schedule_changes_nothing(self):
        machine = GenericMachine(nranks=4)
        base = run(machine, ring_program)
        with_sched = run(machine, ring_program, faults=FaultSchedule())
        assert with_sched.clocks == base.clocks
        assert with_sched.elapsed == base.elapsed

    def test_delay_grows_elapsed(self):
        machine = GenericMachine(nranks=4)
        base = run(machine, ring_program)
        delayed = run(machine, ring_program,
                      faults=FaultSchedule(events=(
                          DelayTransfer(0, 1, seconds=1e-3),)))
        assert delayed.elapsed >= base.elapsed + 1e-3

    def test_drop_charges_retry_phase(self):
        machine = GenericMachine(nranks=4)
        res = run(machine, ring_program,
                  faults=FaultSchedule(events=(DropTransfer(0, 1, times=2),)))
        tr = res.report.traces[0]
        assert tr.phases[RETRY_PHASE].messages_sent == 2
        assert tr.phases[RETRY_PHASE].bytes_sent > 0

    def test_drop_slower_than_clean(self):
        machine = GenericMachine(nranks=4)
        base = run(machine, ring_program)
        dropped = run(machine, ring_program,
                      faults=FaultSchedule(events=(DropTransfer(0, 1),)))
        assert dropped.elapsed > base.elapsed

    def test_retry_budget_exhaustion_raises(self):
        machine = GenericMachine(nranks=4)
        sched = FaultSchedule(events=(DropTransfer(0, 1, times=9),),
                              max_retries=3)
        with pytest.raises(TransferTimeoutError) as ei:
            run(machine, ring_program, faults=sched)
        assert ei.value.src == 0 and ei.value.dst == 1
        assert ei.value.attempts == 9

    def test_payload_survives_drop(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, np.arange(8.0))
                return None
            return (yield from comm.recv(0))

        res = run(GenericMachine(nranks=2), program,
                  faults=FaultSchedule(events=(DropTransfer(0, 1),)))
        assert np.array_equal(res.results[1], np.arange(8.0))


class TestCorruption:
    def test_silent_corruption_flips_one_bit(self):
        payload = np.zeros(16)

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, payload)
                return None
            return (yield from comm.recv(0))

        res = run(GenericMachine(nranks=2), program,
                  faults=FaultSchedule(events=(CorruptTransfer(0, 1),)))
        got = res.results[1]
        assert not np.array_equal(got, payload)
        # Exactly one byte differs and the sender's copy is untouched.
        diff = got.view(np.uint8) != payload.view(np.uint8)
        assert diff.sum() == 1
        assert not payload.any()

    def test_detected_corruption_acts_as_drop(self):
        machine = GenericMachine(nranks=4)
        res = run(machine, ring_program,
                  faults=FaultSchedule(events=(
                      CorruptTransfer(0, 1, detect=True),)))
        tr = res.report.traces[0]
        assert tr.phases[RETRY_PHASE].messages_sent == 1
        # The delivered payload is clean.
        assert sorted(res.results) == list(range(4))

    def test_corruption_is_deterministic(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, np.zeros(16))
                return None
            return (yield from comm.recv(0))

        sched = FaultSchedule(events=(CorruptTransfer(0, 1),), seed=11)
        a = run(GenericMachine(nranks=2), program, faults=sched)
        b = run(GenericMachine(nranks=2), program, faults=sched)
        assert np.array_equal(a.results[1], b.results[1])


class TestTransportHardening:
    """Checksummed payloads and retransmit backoff (the hardened channel)."""

    @staticmethod
    def send_program(payload):
        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, payload)
                return None
            return (yield from comm.recv(0))

        return program

    def test_checksum_redelivers_clean_payload(self):
        payload = np.zeros(16)
        sched = FaultSchedule(events=(CorruptTransfer(0, 1),), checksum=True)
        res = run(GenericMachine(nranks=2), self.send_program(payload),
                  faults=sched)
        assert np.array_equal(res.results[1], payload)
        assert res.report.total_retries() == 1
        assert res.report.total_redelivered() == 1
        tr = res.report.traces[0]
        assert tr.phases[RETRY_PHASE].messages_sent == 1

    def test_checksum_off_keeps_silent_corruption(self):
        payload = np.zeros(16)
        sched = FaultSchedule(events=(CorruptTransfer(0, 1),), checksum=False)
        res = run(GenericMachine(nranks=2), self.send_program(payload),
                  faults=sched)
        assert not np.array_equal(res.results[1], payload)
        assert res.report.total_redelivered() == 0

    def test_checksum_does_not_change_clean_runs(self):
        machine = GenericMachine(nranks=4)
        base = run(machine, ring_program)
        checked = run(machine, ring_program,
                      faults=FaultSchedule(checksum=True))
        assert checked.clocks == base.clocks
        assert checked.report.total_retries() == 0

    def test_checksummed_corruption_costs_a_retry_roundtrip(self):
        # Array payload: scalar payloads carry no recognized bytes, so
        # corruption (and hence the checksum) never touches them.
        program = self.send_program(np.arange(64.0))
        machine = GenericMachine(nranks=2)
        base = run(machine, program)
        redelivered = run(machine, program,
                          faults=FaultSchedule(
                              events=(CorruptTransfer(0, 1),), checksum=True))
        assert redelivered.elapsed > base.elapsed

    def test_checksum_exhausts_retry_budget(self):
        sched = FaultSchedule(events=(CorruptTransfer(0, 1),), checksum=True,
                              max_retries=0)
        with pytest.raises(TransferTimeoutError):
            run(GenericMachine(nranks=2),
                self.send_program(np.zeros(4)), faults=sched)

    def test_backoff_below_one_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule(retry_backoff=0.5)

    def test_backoff_one_is_the_legacy_cost_bitwise(self):
        machine = GenericMachine(nranks=4)
        sched = FaultSchedule(events=(DropTransfer(0, 1, times=2),))
        explicit = FaultSchedule(events=(DropTransfer(0, 1, times=2),),
                                 retry_backoff=1.0)
        assert (run(machine, ring_program, faults=sched).clocks
                == run(machine, ring_program, faults=explicit).clocks)

    def test_backoff_slows_repeated_retries(self):
        machine = GenericMachine(nranks=4)
        events = (DropTransfer(0, 1, times=3),)
        flat = run(machine, ring_program,
                   faults=FaultSchedule(events=events, max_retries=5))
        slowed = run(machine, ring_program,
                     faults=FaultSchedule(events=events, max_retries=5,
                                          retry_backoff=2.0))
        assert slowed.elapsed > flat.elapsed

    def test_retries_surface_in_the_summary(self):
        res = run(GenericMachine(nranks=2),
                  self.send_program(np.arange(8.0)),
                  faults=FaultSchedule(events=(CorruptTransfer(0, 1),),
                                       checksum=True))
        assert "retries" in res.report.summary()
        table = res.report.phase_table()
        assert all("retries" in e and "redelivered" in e
                   for e in table.values())
        assert table[RETRY_PHASE]["retries"] == 1
        assert table[RETRY_PHASE]["redelivered"] == 1


class TestKills:
    def test_kill_records_death_and_tombstones(self):
        sched = FaultSchedule(events=(KillRank(2, after_ops=3),))
        res = run(GenericMachine(nranks=4), ring_program, faults=sched)
        assert list(res.deaths) == [2]
        assert res.results[2] is None
        # The dead rank's ring successor eventually received a tombstone.
        assert isinstance(res.results[3], Tombstone)
        assert res.results[3].rank == 2

    def test_kill_at_time(self):
        def program(comm):
            yield from comm.compute(1.0)
            yield from comm.compute(1.0)
            return comm.now()

        sched = FaultSchedule(events=(KillRank(1, at_time=0.5),))
        res = run(GenericMachine(nranks=2), program, faults=sched)
        assert res.deaths[1] == pytest.approx(1.0)
        assert res.results[0] == 2.0

    def test_sync_failures_agrees_across_survivors(self):
        def program(comm):
            for _ in range(3):
                yield from comm.compute(1e-6)
            dead = yield from comm.sync_failures()
            return dead

        sched = FaultSchedule(events=(KillRank(1, after_ops=2),))
        res = run(GenericMachine(nranks=4), program, faults=sched)
        views = [res.results[r] for r in (0, 2, 3)]
        assert views == [(1,), (1,), (1,)]

    def test_sync_failures_free_without_faults(self):
        def program(comm):
            dead = yield from comm.sync_failures()
            return dead, comm.now()

        res = run(GenericMachine(nranks=4), program)
        assert all(r == ((), 0.0) for r in res.results)

    def test_hw_collective_with_dead_member_deadlocks(self):
        def program(comm):
            yield from comm.compute(1e-6)
            if comm.hw_collectives_available:
                v = yield from comm.hw_coll("barrier")
                return v
            return None

        machine = Intrepid(4)
        sched = FaultSchedule(events=(KillRank(1, after_ops=0),))
        with pytest.raises(DeadlockError) as ei:
            run(machine, program, faults=sched)
        # Every hung survivor is named; the dead rank is not "blocked".
        assert set(ei.value.blocked) == {0, 2, 3}

    def test_detection_latency_charged(self):
        def program(comm):
            if comm.rank == 0:
                got = yield from comm.recv(1)
                return got, comm.now()
            yield from comm.compute(1e-6)
            return None

        sched = FaultSchedule(events=(KillRank(1, after_ops=1),),
                              detect_seconds=0.25)
        res = run(GenericMachine(nranks=2), program, faults=sched)
        got, t = res.results[0]
        assert isinstance(got, Tombstone)
        assert t >= res.deaths[1] + 0.25


class TestBinomialFold:
    def test_matches_distributed_reduce_bitwise(self):
        rng = np.random.default_rng(5)
        for size in (1, 2, 3, 5, 8, 13):
            values = [rng.standard_normal(6) for _ in range(size)]

            def program(comm, values=values):
                out = yield from comm.reduce(values[comm.rank],
                                             lambda a, b: a + b, root=0)
                return out

            res = run(GenericMachine(nranks=size), program)
            local = binomial_fold(values, lambda a, b: a + b)
            assert np.array_equal(res.results[0], local)

    def test_empty_fold_rejected(self):
        with pytest.raises(ValueError):
            binomial_fold([], lambda a, b: a + b)

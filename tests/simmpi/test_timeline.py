"""Optional timeline recording (Gantt-style traces) in the engine."""

import json

import pytest

from repro.machines import GenericMachine, GenericTorus
from repro.simmpi import Engine
from repro.simmpi.tracing import TimelineEvent, timeline_to_json


def simple_program(comm):
    with comm.phase("work"):
        yield from comm.compute(1e-3 * (comm.rank + 1))
    with comm.phase("sync"):
        yield from comm.barrier()
    return None


class TestRecording:
    def test_disabled_by_default(self):
        res = Engine(GenericMachine(nranks=2)).run(simple_program)
        assert res.events == []

    def test_records_all_kinds(self):
        res = Engine(GenericMachine(nranks=3), record_events=True).run(
            simple_program
        )
        kinds = {e.kind for e in res.events}
        assert {"compute", "wait", "xfer"} <= kinds

    def test_event_invariants(self):
        res = Engine(GenericTorus(nranks=8, cores_per_node=2),
                     record_events=True).run(simple_program)
        for e in res.events:
            assert e.t_end >= e.t_start >= 0
            assert 0 <= e.rank < 8
            assert e.t_end <= res.elapsed + 1e-15

    def test_compute_events_match_trace_totals(self):
        res = Engine(GenericMachine(nranks=4), record_events=True).run(
            simple_program
        )
        for rank in range(4):
            from_events = sum(e.duration for e in res.events
                              if e.rank == rank and e.kind == "compute"
                              and e.phase == "work")
            assert from_events == pytest.approx(
                res.report.traces[rank].phases["work"].seconds
            )

    def test_transfer_events_carry_endpoints_and_bytes(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, b"x" * 500)
            else:
                yield from comm.recv(0)
            return None

        res = Engine(GenericMachine(nranks=2), record_events=True).run(program)
        xfers = [e for e in res.events if e.kind == "xfer"]
        assert len(xfers) == 1
        assert xfers[0].rank == 0 and xfers[0].peer == 1
        assert xfers[0].nbytes == 500

    def test_phase_propagates_to_events(self):
        res = Engine(GenericMachine(nranks=2), record_events=True).run(
            simple_program
        )
        phases = {e.phase for e in res.events}
        assert phases <= {"work", "sync"}


class TestJsonExport:
    def test_round_trip(self):
        res = Engine(GenericMachine(nranks=3), record_events=True).run(
            simple_program
        )
        rows = json.loads(timeline_to_json(res.events))
        assert len(rows) == len(res.events)
        assert all(set(r) == {"rank", "phase", "kind", "t_start", "t_end",
                              "nbytes", "peer"} for r in rows)

    def test_sorted_by_start_time(self):
        res = Engine(GenericMachine(nranks=4), record_events=True).run(
            simple_program
        )
        rows = json.loads(timeline_to_json(res.events))
        starts = [r["t_start"] for r in rows]
        assert starts == sorted(starts)

    def test_event_duration_property(self):
        e = TimelineEvent(rank=0, phase="x", kind="compute", t_start=1.0,
                          t_end=3.5)
        assert e.duration == 2.5


class TestAlgorithmTimelines:
    def test_ca_step_timeline(self):
        """A CA step records a plausible busy/idle timeline."""
        from repro.core import allpairs_config, virtual_team_blocks
        from repro.core.ca_step import ca_interaction_step
        from repro.physics import VirtualKernel

        cfg = allpairs_config(8, 2)
        kernel = VirtualKernel()
        blocks = virtual_team_blocks(512, cfg.grid.nteams)

        def program(comm):
            col = cfg.grid.col_of(comm.rank)
            lb = blocks[col] if cfg.grid.row_of(comm.rank) == 0 else None
            res = yield from ca_interaction_step(comm, cfg, kernel, lb)
            return res

        res = Engine(GenericMachine(nranks=8), record_events=True).run(program)
        phases = {e.phase for e in res.events}
        assert {"bcast", "shift", "compute", "reduce"} <= phases
        # Compute events exist on every rank.
        for rank in range(8):
            assert any(e.rank == rank and e.kind == "compute"
                       for e in res.events)

"""Engine semantics: clocks, matching, blocking, failure modes."""

import pytest

from repro.machines import GenericMachine, GenericTorus
from repro.simmpi import DeadlockError, Engine, RankFailedError, SimMPIError


def run(machine, program, **kw):
    return Engine(machine, **kw).run(program)


class TestCompute:
    def test_compute_advances_clock(self):
        def program(comm):
            yield from comm.compute(1.5)
            yield from comm.compute(0.5)
            return comm.now()

        res = run(GenericMachine(nranks=3), program)
        assert res.results == [2.0, 2.0, 2.0]
        assert res.elapsed == 2.0

    def test_negative_compute_rejected(self):
        def program(comm):
            yield from comm.compute(-1.0)

        with pytest.raises((SimMPIError, RankFailedError)):
            run(GenericMachine(nranks=1), program)

    def test_zero_ranks_program_results(self):
        def program(comm):
            return comm.rank
            yield  # pragma: no cover - makes this a generator

        res = run(GenericMachine(nranks=4), program)
        assert res.results == [0, 1, 2, 3]


class TestPointToPoint:
    def test_payload_moves(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, {"v": 42})
                return None
            return (yield from comm.recv(0))

        res = run(GenericMachine(nranks=2), program)
        assert res.results[1] == {"v": 42}

    def test_rendezvous_completion_time(self):
        m = GenericMachine(nranks=2, alpha=1e-6, beta=1e-9)

        def program(comm):
            if comm.rank == 0:
                yield from comm.compute(5e-6)  # sender late
                yield from comm.send(1, b"x" * 1000)
            else:
                yield from comm.recv(0)
            return comm.now()

        res = run(m, program)
        # transfer starts at max(post times)=5e-6, takes alpha + 1000*beta.
        expected = 5e-6 + 1e-6 + 1000 * 1e-9
        assert res.results[0] == pytest.approx(expected)
        assert res.results[1] == pytest.approx(expected)

    def test_eager_send_completes_immediately(self):
        m = GenericMachine(nranks=2, alpha=1e-6, beta=1e-9)

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, b"x" * 100)
                t_send_done = comm.now()
                return t_send_done
            yield from comm.compute(1e-3)  # receiver very late
            yield from comm.recv(0)
            return comm.now()

        res = Engine(m, eager_threshold=1 << 20).run(program)
        assert res.results[0] == pytest.approx(0.0)  # buffered instantly
        assert res.results[1] == pytest.approx(1e-3)  # data arrived long ago

    def test_self_send(self):
        def program(comm):
            req_s = yield from comm.isend(comm.rank, "me", tag=3)
            got = yield from comm.recv(comm.rank, tag=3)
            yield from comm.wait(req_s)
            return got

        res = run(GenericMachine(nranks=3), program)
        assert res.results == ["me"] * 3

    def test_fifo_matching_per_channel(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, "first")
                yield from comm.send(1, "second")
                return None
            a = yield from comm.recv(0)
            b = yield from comm.recv(0)
            return (a, b)

        res = run(GenericMachine(nranks=2), program)
        assert res.results[1] == ("first", "second")

    def test_tags_demultiplex(self):
        def program(comm):
            if comm.rank == 0:
                ra = yield from comm.isend(1, "for-seven", tag=7)
                rb = yield from comm.isend(1, "for-nine", tag=9)
                yield from comm.wait(ra, rb)
                return None
            nine = yield from comm.recv(0, tag=9)
            seven = yield from comm.recv(0, tag=7)
            return (nine, seven)

        res = run(GenericMachine(nranks=2), program)
        assert res.results[1] == ("for-nine", "for-seven")

    def test_sendrecv_ring_identity(self):
        def program(comm):
            x = comm.rank
            for _ in range(comm.size):
                x = yield from comm.sendrecv(
                    (comm.rank + 1) % comm.size, x, (comm.rank - 1) % comm.size
                )
            return x

        res = run(GenericMachine(nranks=7), program)
        assert res.results == list(range(7))

    def test_explicit_nbytes_override(self):
        m = GenericMachine(nranks=2, alpha=0.0, beta=1e-9)

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, b"xx", nbytes=10_000)
            else:
                yield from comm.recv(0)
            return comm.now()

        res = run(m, program)
        assert res.results[1] == pytest.approx(10_000 * 1e-9)


class TestBlockingAndFailure:
    def test_deadlock_detected(self):
        def program(comm):
            yield from comm.send((comm.rank + 1) % comm.size, "x")

        with pytest.raises(DeadlockError) as ei:
            run(GenericMachine(nranks=4), program)
        assert len(ei.value.blocked) == 4
        for desc in ei.value.blocked.values():
            assert "send" in desc

    def test_one_sided_recv_deadlocks(self):
        def program(comm):
            if comm.rank == 1:
                yield from comm.recv(0, tag=5)

        with pytest.raises(DeadlockError) as ei:
            run(GenericMachine(nranks=2), program)
        assert list(ei.value.blocked) == [1]

    def test_rank_exception_fails_fast(self):
        def program(comm):
            yield from comm.compute(1e-6)
            if comm.rank == 2:
                raise RuntimeError("kaboom")

        with pytest.raises(RankFailedError) as ei:
            run(GenericMachine(nranks=4), program)
        assert ei.value.rank == 2
        assert isinstance(ei.value.original, RuntimeError)

    def test_max_ops_guard(self):
        def program(comm):
            while True:
                yield from comm.compute(0.0)

        with pytest.raises(SimMPIError, match="max_ops"):
            Engine(GenericMachine(nranks=1), max_ops=100).run(program)

    def test_non_generator_program_rejected(self):
        def program(comm):
            return 42

        with pytest.raises(SimMPIError, match="generator"):
            run(GenericMachine(nranks=1), program)

    def test_invalid_peer_rank(self):
        def program(comm):
            yield from comm.send(99, "x")

        with pytest.raises((SimMPIError, RankFailedError)):
            run(GenericMachine(nranks=2), program)


class TestDeterminism:
    def test_identical_runs(self):
        m = GenericTorus(nranks=16, cores_per_node=4)

        def program(comm):
            total = yield from comm.allreduce(comm.rank * 1.5, lambda a, b: a + b)
            x = comm.rank
            for _ in range(4):
                x = yield from comm.sendrecv(
                    (comm.rank + 3) % comm.size, x, (comm.rank - 3) % comm.size
                )
            return (total, x, comm.now())

        r1 = Engine(m).run(program)
        r2 = Engine(m).run(program)
        assert r1.results == r2.results
        assert r1.clocks == r2.clocks
        assert r1.nops == r2.nops

    def test_elapsed_is_max_clock(self):
        def program(comm):
            yield from comm.compute(1e-6 * (comm.rank + 1))
            return None

        res = run(GenericMachine(nranks=5), program)
        assert res.elapsed == pytest.approx(5e-6)
        assert res.clocks[0] == pytest.approx(1e-6)

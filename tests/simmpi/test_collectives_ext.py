"""Large-message collective algorithms: pipelined bcast, Rabenseifner."""

import numpy as np
import pytest

from repro.machines import GenericMachine, GenericTorus
from repro.physics import ParticleSet, TravelBlock, VirtualBlock
from repro.simmpi import Engine
from repro.simmpi.collectives import allreduce as allreduce_rd
from repro.simmpi.collectives import bcast as bcast_tree
from repro.simmpi.collectives_ext import allreduce_rabenseifner, bcast_pipelined
from repro.simmpi.payload import join_payloads, split_payload


class TestSplitJoin:
    def test_array_roundtrip(self):
        a = np.arange(17.0).reshape(17, 1)
        parts = split_payload(a, 4)
        assert len(parts) == 4
        assert np.array_equal(join_payloads(parts), a)

    def test_particle_set_roundtrip(self):
        ps = ParticleSet.uniform_random(23, 2, 1.0, seed=0)
        back = join_payloads(split_payload(ps, 5))
        assert np.array_equal(back.pos, ps.pos)
        assert np.array_equal(back.ids, ps.ids)

    def test_travel_block_with_forces(self):
        ps = ParticleSet.uniform_random(10, 2, 1.0, seed=1)
        tb = TravelBlock(pos=ps.pos, ids=ps.ids, team=3,
                         forces=np.ones_like(ps.pos))
        back = join_payloads(split_payload(tb, 3))
        assert back.team == 3
        assert np.array_equal(back.pos, tb.pos)
        assert np.array_equal(back.forces, tb.forces)

    def test_virtual_block_counts(self):
        vb = VirtualBlock(count=10, team=2, extra_bytes=16)
        parts = split_payload(vb, 3)
        assert [p.count for p in parts] == [4, 3, 3]
        back = join_payloads(parts)
        assert back.count == 10 and back.team == 2 and back.extra_bytes == 16

    def test_unsplittable_returns_none(self):
        assert split_payload({"a": 1}, 2) is None

    def test_k1_identity(self):
        obj = object()
        assert split_payload(obj, 1) == [obj]

    def test_wire_bytes_conserved(self):
        from repro.simmpi import payload_nbytes

        ps = ParticleSet.uniform_random(37, 2, 1.0)
        parts = split_payload(ps, 6)
        assert sum(payload_nbytes(p) for p in parts) == payload_nbytes(ps)


class TestPipelinedBcast:
    @pytest.mark.parametrize("p", [2, 3, 5, 8, 13])
    @pytest.mark.parametrize("segments", [1, 2, 7])
    def test_array_delivery(self, p, segments):
        def prog(comm):
            root = p // 2
            v = np.arange(50.0) if comm.rank == root else None
            got = yield from bcast_pipelined(comm, v, root, segments=segments)
            return float(got.sum())

        res = Engine(GenericMachine(nranks=p)).run(prog)
        assert res.results == [float(np.arange(50.0).sum())] * p

    def test_particle_payload(self):
        ps = ParticleSet.uniform_random(29, 2, 1.0, seed=2)

        def prog(comm):
            v = ps if comm.rank == 0 else None
            got = yield from bcast_pipelined(comm, v, 0, segments=4)
            return float(got.pos.sum())

        res = Engine(GenericMachine(nranks=6)).run(prog)
        assert res.results == [pytest.approx(float(ps.pos.sum()))] * 6

    def test_unsegmentable_payload_raises(self):
        def prog(comm):
            v = {"k": 1} if comm.rank == 0 else None
            got = yield from bcast_pipelined(comm, v, 0, segments=4)
            return got

        with pytest.raises(Exception, match="segmented"):
            Engine(GenericMachine(nranks=3)).run(prog)

    def test_single_rank(self):
        def prog(comm):
            got = yield from bcast_pipelined(comm, np.ones(4), 0)
            return float(got.sum())

        assert Engine(GenericMachine(nranks=1)).run(prog).results == [4.0]

    def test_large_message_beats_binomial_tree(self):
        """The algorithm-selection crossover real MPI libraries implement."""
        m = GenericTorus(nranks=32, cores_per_node=4)

        def timing(fn, nelem, **kw):
            def prog(comm):
                v = np.zeros(nelem) if comm.rank == 0 else None
                yield from fn(comm, v, 0, **kw)
                return comm.now()

            return max(Engine(m).run(prog).results)

        big = 1 << 17
        assert (timing(bcast_pipelined, big, segments=16)
                < timing(bcast_tree, big))
        small = 16
        assert (timing(bcast_tree, small)
                < timing(bcast_pipelined, small, segments=16))


class TestRabenseifnerAllreduce:
    @pytest.mark.parametrize("p", [2, 4, 8, 16])
    @pytest.mark.parametrize("nelem", [1, 7, 64, 129])
    def test_matches_sum(self, p, nelem):
        def prog(comm):
            v = np.arange(float(nelem)) * (comm.rank + 1)
            got = yield from allreduce_rabenseifner(comm, v)
            return got

        res = Engine(GenericMachine(nranks=p)).run(prog)
        expect = np.arange(float(nelem)) * (p * (p + 1) // 2)
        for r in res.results:
            assert np.allclose(r, expect)

    def test_all_ranks_agree_exactly(self):
        def prog(comm):
            rng = np.random.default_rng(comm.rank)
            v = rng.random(96)
            got = yield from allreduce_rabenseifner(comm, v)
            return got

        res = Engine(GenericMachine(nranks=8)).run(prog)
        for r in res.results[1:]:
            assert np.array_equal(r, res.results[0])

    def test_non_power_of_two_falls_back(self):
        def prog(comm):
            v = np.ones(10)
            got = yield from allreduce_rabenseifner(comm, v)
            return got

        res = Engine(GenericMachine(nranks=6)).run(prog)
        assert np.allclose(res.results[0], 6.0)

    def test_preserves_shape(self):
        def prog(comm):
            v = np.ones((4, 3))
            got = yield from allreduce_rabenseifner(comm, v)
            return got.shape

        assert Engine(GenericMachine(nranks=4)).run(prog).results == [(4, 3)] * 4

    def test_large_arrays_beat_recursive_doubling(self):
        m = GenericTorus(nranks=32, cores_per_node=4)

        def timing(fn, nelem):
            def prog(comm):
                v = np.ones(nelem)
                yield from fn(comm, v, np.add)
                return comm.now()

            return max(Engine(m).run(prog).results)

        assert timing(allreduce_rabenseifner, 1 << 17) < timing(
            allreduce_rd, 1 << 17
        )

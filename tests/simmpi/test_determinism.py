"""The simulated machine is a deterministic function of its inputs.

Running the same workload twice — clean or under an identical fault
schedule — must reproduce every observable exactly: per-rank virtual
clocks, makespan, per-phase seconds, message and byte counts, recorded
deaths.  Fault decisions are pure functions of ``(schedule, channel, op
index)``, never of host-side state, so injecting faults must not break
run-to-run reproducibility; and attaching an *empty* schedule must be
observationally identical to attaching none at all.
"""

import pytest

from repro.core import allpairs_config, run_allpairs_virtual, run_cutoff_virtual
from repro.machines import GenericTorus
from repro.simmpi import DropTransfer, FaultSchedule, KillRank

_P, _C, _N = 8, 2, 1024


def _fingerprint(run):
    """Every observable of a run, as a comparable value."""
    phases = {}
    for tr in run.report.traces:
        for label, tot in tr.phases.items():
            phases[(tr.rank, label)] = (
                tot.seconds, tot.messages_sent, tot.bytes_sent
            )
    return (
        tuple(run.clocks),
        run.elapsed,
        dict(run.deaths),
        run.report.total_messages(),
        run.report.total_bytes(),
        phases,
    )


def _faulty_schedule():
    return FaultSchedule(
        events=(KillRank(5, after_ops=6), DropTransfer(0, 1)), seed=3
    )


class TestCleanDeterminism:
    def test_allpairs_twice_identical(self):
        machine = GenericTorus(nranks=_P, cores_per_node=4)
        a = run_allpairs_virtual(machine, _N, _C)
        b = run_allpairs_virtual(machine, _N, _C)
        assert _fingerprint(a) == _fingerprint(b)

    def test_cutoff_twice_identical(self):
        machine = GenericTorus(nranks=_P, cores_per_node=4)
        kw = dict(rcut=0.3, box_length=1.0)
        a = run_cutoff_virtual(machine, _N, _C, **kw)
        b = run_cutoff_virtual(machine, _N, _C, **kw)
        assert _fingerprint(a) == _fingerprint(b)


@pytest.mark.faults
class TestFaultyDeterminism:
    def test_faulty_run_twice_identical(self):
        machine = GenericTorus(nranks=_P, cores_per_node=4)
        a = run_allpairs_virtual(machine, _N, _C, faults=_faulty_schedule())
        b = run_allpairs_virtual(machine, _N, _C, faults=_faulty_schedule())
        assert a.deaths, "schedule must actually kill rank 5"
        assert _fingerprint(a) == _fingerprint(b)

    def test_schedule_object_reuse_identical(self):
        """One schedule object reused across runs leaks no state."""
        machine = GenericTorus(nranks=_P, cores_per_node=4)
        sched = _faulty_schedule()
        a = run_allpairs_virtual(machine, _N, _C, faults=sched)
        b = run_allpairs_virtual(machine, _N, _C, faults=sched)
        assert _fingerprint(a) == _fingerprint(b)

    def test_faulty_cutoff_twice_identical(self):
        machine = GenericTorus(nranks=_P, cores_per_node=4)
        sched = FaultSchedule(events=(KillRank(6, after_ops=5),))
        kw = dict(rcut=0.3, box_length=1.0)
        a = run_cutoff_virtual(machine, _N, _C, faults=sched, **kw)
        b = run_cutoff_virtual(machine, _N, _C, faults=sched, **kw)
        assert a.deaths
        assert _fingerprint(a) == _fingerprint(b)


@pytest.mark.faults
class TestEmptyScheduleTransparency:
    @pytest.mark.parametrize("c", [1, 2, 4])
    def test_empty_schedule_costs_nothing(self, c):
        """An empty schedule must not slow the step down or add traffic.

        The resilient step does insert a failure-sync point (a barrier
        among survivors), which synchronizes early-finishing ranks and
        attributes their wait to the ``recover`` phase — but it sends no
        messages and never extends the makespan.
        """
        machine = GenericTorus(nranks=_P, cores_per_node=4)
        bare = run_allpairs_virtual(machine, _N, c)
        empty = run_allpairs_virtual(machine, _N, c, faults=FaultSchedule())
        assert empty.elapsed == bare.elapsed
        assert not empty.deaths
        assert empty.report.total_messages() == bare.report.total_messages()
        assert empty.report.total_bytes() == bare.report.total_bytes()
        # Per-rank total time is unchanged; only phase attribution moves.
        for te in empty.report.traces:
            assert te.total_seconds <= bare.elapsed + 1e-15

    def test_empty_schedule_identical_across_runs(self):
        machine = GenericTorus(nranks=_P, cores_per_node=4)
        a = run_allpairs_virtual(machine, _N, _C, faults=FaultSchedule())
        b = run_allpairs_virtual(machine, _N, _C, faults=FaultSchedule())
        assert _fingerprint(a) == _fingerprint(b)

    def test_fault_run_has_recover_phase_clean_run_does_not(self):
        from repro.simmpi.tracing import RECOVER_PHASE

        machine = GenericTorus(nranks=_P, cores_per_node=4)
        clean = run_allpairs_virtual(machine, _N, _C)
        faulty = run_allpairs_virtual(machine, _N, _C,
                                      faults=_faulty_schedule())
        assert RECOVER_PHASE not in clean.report.phase_labels()
        assert faulty.report.max_time(RECOVER_PHASE) > 0

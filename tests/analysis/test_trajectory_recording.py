"""Trajectory recording through the distributed driver, and snapshot I/O."""

import numpy as np
import pytest

from repro.analysis import Trajectory, mean_squared_displacement
from repro.core import (
    SimulationConfig,
    allpairs_config,
    cutoff_config,
    run_simulation,
    team_blocks_even,
    team_blocks_spatial,
)
from repro.machines import GenericMachine
from repro.physics import ForceLaw, ParticleSet, load_particles, save_particles


class TestDriverRecording:
    def _run(self, sample_every, nsteps=6, cutoff=False):
        law = ForceLaw(k=1e-5, softening=5e-3)
        ps = ParticleSet.uniform_random(40, 2, 1.0, max_speed=0.05, seed=111)
        if cutoff:
            cfg = cutoff_config(8, 2, rcut=0.3, box_length=1.0, dim=2)
            blocks = team_blocks_spatial(ps, cfg.geometry)
        else:
            cfg = allpairs_config(8, 2)
            blocks = team_blocks_even(ps, cfg.grid.nteams)
        scfg = SimulationConfig(cfg=cfg, law=law, dt=2e-3, nsteps=nsteps,
                                box_length=1.0)
        return run_simulation(GenericMachine(nranks=8), scfg, blocks,
                              sample_every=sample_every), ps

    def test_no_sampling_by_default(self):
        out, _ = self._run(0)
        assert out.trajectory is None
        assert "sample" not in out.report.phase_labels()

    def test_frame_count_and_times(self):
        out, _ = self._run(2, nsteps=6)
        traj = out.trajectory
        assert isinstance(traj, Trajectory)
        assert len(traj) == 4  # initial + steps 2, 4, 6
        assert traj.times == pytest.approx([0.0, 4e-3, 8e-3, 12e-3])

    def test_first_frame_is_initial_state(self):
        out, ps = self._run(3)
        first = out.trajectory[0]
        assert np.allclose(first.pos, ps.sorted_by_id().pos)

    def test_last_frame_matches_final_state(self):
        out, _ = self._run(1, nsteps=5)
        last = out.trajectory[-1]
        assert np.allclose(last.pos, out.particles.pos)

    def test_sampling_is_real_communication(self):
        out, _ = self._run(1)
        assert out.report.max_bytes("sample") > 0

    def test_cutoff_run_with_reassignment_keeps_all_particles(self):
        out, _ = self._run(2, cutoff=True)
        for frame in out.trajectory.frames:
            assert np.array_equal(frame.ids, np.arange(40))

    def test_msd_of_recorded_trajectory_is_monotoneish(self):
        out, _ = self._run(1, nsteps=8)
        msd = mean_squared_displacement(out.trajectory)
        assert msd[0] == 0.0
        assert msd[-1] > 0.0

    def test_verlet_recording(self):
        law = ForceLaw(k=1e-5)
        ps = ParticleSet.uniform_random(32, 2, 1.0, max_speed=0.05, seed=112)
        cfg = allpairs_config(4, 2)
        scfg = SimulationConfig(cfg=cfg, law=law, dt=2e-3, nsteps=4,
                                box_length=1.0, integrator="verlet")
        out = run_simulation(GenericMachine(nranks=4), scfg,
                             team_blocks_even(ps, cfg.grid.nteams),
                             sample_every=2)
        assert len(out.trajectory) == 3


class TestSnapshotIO:
    def test_round_trip(self, tmp_path):
        ps = ParticleSet.uniform_random(37, 3, 2.0, max_speed=0.4, seed=9)
        path = tmp_path / "snap.npz"
        save_particles(path, ps)
        back = load_particles(path)
        assert np.array_equal(back.pos, ps.pos)
        assert np.array_equal(back.vel, ps.vel)
        assert np.array_equal(back.ids, ps.ids)

    def test_loaded_copy_is_independent(self, tmp_path):
        ps = ParticleSet.uniform_random(5, 2, 1.0)
        path = tmp_path / "snap.npz"
        save_particles(path, ps)
        a = load_particles(path)
        b = load_particles(path)
        a.pos += 1
        assert not np.allclose(a.pos, b.pos)

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, format_version=np.int64(99), pos=np.zeros((1, 1)),
                 vel=np.zeros((1, 1)), ids=np.zeros(1, dtype=np.int64))
        with pytest.raises(ValueError, match="version"):
            load_particles(path)

    def test_checkpoint_restart_continues_identically(self, tmp_path):
        """Save mid-run, reload, continue: bitwise-identical trajectory."""
        from repro.physics import euler_step, reference_forces, reflect

        law = ForceLaw(k=1e-5)
        ps = ParticleSet.uniform_random(30, 2, 1.0, max_speed=0.05, seed=10)

        def advance(state, steps):
            for _ in range(steps):
                f = reference_forces(law, state)
                euler_step(state.pos, state.vel, f, 1e-3)
                reflect(state.pos, state.vel, 1.0)
            return state

        full = advance(ps.copy(), 10)
        half = advance(ps.copy(), 5)
        path = tmp_path / "ckpt.npz"
        save_particles(path, half)
        resumed = advance(load_particles(path), 5)
        assert np.array_equal(resumed.pos, full.pos)
        assert np.array_equal(resumed.vel, full.vel)

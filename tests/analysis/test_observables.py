"""Observables: temperature, MSD, radial distribution function."""

import numpy as np
import pytest

from repro.analysis import (
    Trajectory,
    mean_squared_displacement,
    radial_distribution,
    temperature,
)
from repro.physics import ParticleSet


def make_traj(pos_frames, vel=None):
    traj = Trajectory()
    for t, pos in enumerate(pos_frames):
        n, d = pos.shape
        v = vel if vel is not None else np.zeros((n, d))
        traj.append(float(t), ParticleSet(pos.copy(), v.copy(), np.arange(n)))
    return traj


class TestTemperature:
    def test_equipartition_value(self):
        vel = np.array([[1.0, 0.0], [0.0, 1.0]])
        ps = ParticleSet(np.zeros((2, 2)), vel, np.arange(2))
        # <|v|^2> = 1, d = 2, m = 1 -> T = 0.5.
        assert temperature(ps) == pytest.approx(0.5)

    def test_mass_scaling(self):
        vel = np.ones((4, 3))
        ps = ParticleSet(np.zeros((4, 3)), vel, np.arange(4))
        assert temperature(ps, mass=2.0) == pytest.approx(2 * temperature(ps))

    def test_zero_velocity(self):
        ps = ParticleSet(np.zeros((3, 2)), np.zeros((3, 2)), np.arange(3))
        assert temperature(ps) == 0.0

    def test_empty_raises(self):
        ps = ParticleSet.empty(2)
        with pytest.raises(ValueError):
            temperature(ps)


class TestTrajectory:
    def test_append_and_access(self):
        traj = make_traj([np.zeros((3, 2)), np.ones((3, 2))])
        assert len(traj) == 2
        assert traj.n_particles == 3 and traj.dim == 2
        assert np.allclose(traj[1].pos, 1.0)

    def test_frames_sorted_by_id(self):
        traj = Trajectory()
        ps = ParticleSet(np.array([[1.0], [2.0]]), np.zeros((2, 1)),
                         np.array([5, 3]))
        traj.append(0.0, ps)
        assert list(traj[0].ids) == [3, 5]
        assert traj[0].pos[0, 0] == 2.0

    def test_mismatched_ids_rejected(self):
        traj = Trajectory()
        traj.append(0.0, ParticleSet(np.zeros((2, 1)), np.zeros((2, 1)),
                                     np.array([0, 1])))
        with pytest.raises(ValueError):
            traj.append(1.0, ParticleSet(np.zeros((2, 1)), np.zeros((2, 1)),
                                         np.array([0, 2])))

    def test_decreasing_time_rejected(self):
        traj = make_traj([np.zeros((1, 1))])
        with pytest.raises(ValueError):
            traj.append(-1.0, ParticleSet(np.zeros((1, 1)),
                                          np.zeros((1, 1)), np.arange(1)))

    def test_periodic_unwrapping(self):
        # One particle drifting right through the wall of a unit box.
        frames = [np.array([[0.8]]), np.array([[0.95]]), np.array([[0.1]])]
        traj = make_traj(frames)
        disp = traj.displacements(box=1.0)
        assert disp[2, 0, 0] == pytest.approx(0.3)  # 0.8 -> 1.1, unwrapped

    def test_empty_positions_raise(self):
        with pytest.raises(ValueError):
            Trajectory().positions()


class TestMSD:
    def test_ballistic_growth(self):
        """Free streaming: MSD(t) = |v|^2 t^2."""
        v = np.array([[0.3, 0.4]])  # speed 0.5
        frames = [np.array([[0.0, 0.0]]) + v * t for t in range(5)]
        traj = make_traj(frames, vel=v)
        msd = mean_squared_displacement(traj)
        for t in range(5):
            assert msd[t] == pytest.approx(0.25 * t * t)

    def test_stationary_is_zero(self):
        traj = make_traj([np.ones((4, 2))] * 3)
        assert np.allclose(mean_squared_displacement(traj), 0.0)

    def test_periodic_msd_keeps_growing(self):
        frames = [np.array([[(0.1 * t) % 1.0]]) for t in range(15)]
        traj = make_traj(frames)
        msd = mean_squared_displacement(traj, box=1.0)
        assert msd[-1] == pytest.approx((0.1 * 14) ** 2, rel=1e-9)


class TestRDF:
    @pytest.mark.slow
    def test_uniform_gas_is_flat(self):
        ps = ParticleSet.uniform_random(3000, 2, 1.0, seed=0)
        r, g = radial_distribution(ps, box_length=1.0, periodic=True,
                                   rmax=0.4, nbins=20)
        # Away from the smallest bins (noise), g(r) ~ 1.
        assert np.abs(g[5:] - 1.0).max() < 0.15

    def test_pair_at_known_distance(self):
        pos = np.array([[0.3, 0.5], [0.7, 0.5]])
        ps = ParticleSet(pos, np.zeros((2, 2)), np.arange(2))
        r, g = radial_distribution(ps, box_length=1.0, rmax=0.5, nbins=10)
        hot = np.argmax(g)
        assert 0.35 <= r[hot] <= 0.45  # the 0.4 separation bin

    def test_excluded_volume_shows_depletion(self):
        """A repulsive system run to (near) equilibrium shows g(r) < 1 at
        short range — particles avoid each other."""
        from repro.physics import (ForceLaw, euler_step, reference_forces,
                                   reflect)

        law = ForceLaw(k=1e-3, softening=5e-3)
        ps = ParticleSet.uniform_random(200, 2, 1.0, seed=3)
        for _ in range(200):
            f = reference_forces(law, ps)
            euler_step(ps.pos, ps.vel, f, 2e-3)
            ps.vel *= 0.8  # quench toward the energy minimum
            reflect(ps.pos, ps.vel, 1.0)
        r, g = radial_distribution(ps, box_length=1.0, rmax=0.25, nbins=12)
        assert g[0] < 0.5  # depleted core

    def test_1d_and_3d_supported(self):
        for d in (1, 3):
            ps = ParticleSet.uniform_random(400, d, 1.0, seed=1)
            r, g = radial_distribution(ps, box_length=1.0, periodic=True,
                                       rmax=0.3, nbins=10)
            assert len(r) == len(g) == 10
            assert np.isfinite(g).all()

    def test_validation(self):
        ps = ParticleSet.uniform_random(10, 2, 1.0)
        with pytest.raises(ValueError):
            radial_distribution(ps, box_length=1.0, rmax=2.0)
        one = ParticleSet.uniform_random(1, 2, 1.0)
        with pytest.raises(ValueError):
            radial_distribution(one, box_length=1.0)

"""Assorted coverage: package metadata, size-1 edges, helper internals."""

import operator

import pytest

from repro.machines import GenericMachine, GenericTorus, Hopper, Intrepid
from repro.simmpi import Engine


class TestPackage:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_py_typed_marker(self):
        import pathlib

        import repro

        root = pathlib.Path(repro.__file__).parent
        assert (root / "py.typed").exists()


class TestSizeOneEdges:
    def test_all_collectives_on_singleton(self):
        def program(comm):
            a = yield from comm.bcast("x", 0)
            b = yield from comm.reduce(1, operator.add, 0)
            c = yield from comm.allreduce(2, operator.add)
            d = yield from comm.gather(3, 0)
            e = yield from comm.scatter([4], 0)
            f = yield from comm.allgather(5)
            g = yield from comm.alltoall([6])
            yield from comm.barrier()
            return (a, b, c, d, e, f, g)

        res = Engine(GenericMachine(nranks=1)).run(program)
        assert res.results == [("x", 1, 2, [3], 4, [5], [6])]

    def test_wait_with_no_requests(self):
        def program(comm):
            out = yield from comm.wait()
            return out

        assert Engine(GenericMachine(nranks=1)).run(program).results == [[]]

    def test_single_rank_grid(self):
        from repro.core import run_allpairs
        from repro.physics import ForceLaw, ParticleSet, reference_forces

        import numpy as np

        ps = ParticleSet.uniform_random(20, 2, 1.0, seed=0)
        out = run_allpairs(GenericMachine(nranks=1), ps, 1)
        assert np.allclose(out.forces, reference_forces(ForceLaw(), ps),
                           atol=1e-18)


class TestCliHelpers:
    def test_small_cpn_divides(self):
        from repro.cli import _small_cpn

        for p in (7, 12, 24, 96, 100):
            cpn = _small_cpn(p)
            assert p % cpn == 0

    def test_machine_factory(self):
        from repro.cli import _machine

        assert _machine("hopper", 48).name == "hopper"
        assert _machine("intrepid", 8).name == "intrepid"
        assert _machine("generic", 7).nranks == 7


class TestMachineDescriptions:
    @pytest.mark.parametrize("machine", [
        GenericMachine(nranks=4),
        GenericTorus(nranks=8, cores_per_node=2),
        Hopper(48, cores_per_node=12),
        Intrepid(8, cores_per_node=4),
    ], ids=lambda m: m.name)
    def test_describe_contains_key_facts(self, machine):
        text = machine.describe()
        assert machine.name in text
        assert str(machine.nranks) in text


class TestScheduleInternals:
    def test_holder_visitor_duality_cutoff(self):
        from repro.core import cutoff_schedule

        s = cutoff_schedule((6, 4), (1, 1), 2)
        for u in range(s.window):
            for team in range(24):
                col = s.holder_of(team, u)
                assert s.visitor_of(col, u) == team

    def test_positions_per_row_are_disjoint(self):
        from repro.core import half_ring_schedule

        s = half_ring_schedule(12, 3)
        all_pos = []
        for k in range(3):
            all_pos.extend(s.covered_positions(k))
        assert len(all_pos) == len(set(all_pos)) == s.window


class TestReportEdgeCases:
    def test_empty_trace_report(self):
        from repro.simmpi.tracing import TraceReport

        rep = TraceReport([])
        assert rep.max_time("x") == 0.0
        assert rep.mean_time("x") == 0.0
        assert rep.total_messages() == 0
        assert rep.critical_messages() == 0

    def test_render_scaling_handles_missing_points(self):
        from repro.experiments import FIG3, render_figure, run_figure

        text = render_figure(run_figure(FIG3["3a"]))
        assert "-" in text  # skipped (p, c) combinations render as dashes

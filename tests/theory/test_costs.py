"""Algorithm cost expressions (Sections II-IV)."""

import math

import pytest

from repro.theory import (
    ca_allpairs_cost,
    ca_cutoff_cost,
    force_decomposition_cost,
    interactions_per_particle,
    neutral_territory_cost,
    particle_decomposition_cost,
    spatial_decomposition_cost,
)


class TestClassicDecompositions:
    def test_particle(self):
        b = particle_decomposition_cost(1000, 16)
        assert b.messages == 16 and b.words == 1000

    def test_force(self):
        b = force_decomposition_cost(1600, 16)
        assert b.messages == pytest.approx(4.0)
        assert b.words == pytest.approx(400.0)

    def test_force_single_proc(self):
        assert force_decomposition_cost(10, 1).messages == 1.0

    def test_spatial(self):
        b = spatial_decomposition_cost(n=1000, p=10, m_proc=2, d=3)
        assert b.messages == 8
        assert b.words == pytest.approx(800.0)

    def test_neutral_territory(self):
        b = neutral_territory_cost(n=1000, p=100, m_proc=2, d=3)
        assert b.messages == 1.0
        assert b.words == pytest.approx(1000 * 8 / 1000.0)


class TestCAAllPairs:
    def test_equation5(self):
        b = ca_allpairs_cost(n=1024, p=64, c=4)
        assert b.messages == pytest.approx(4.0)  # p/c^2
        assert b.words == pytest.approx(256.0)  # n/c

    def test_c1_matches_particle_decomposition(self):
        n, p = 2048, 32
        ca = ca_allpairs_cost(n, p, 1)
        pd = particle_decomposition_cost(n, p)
        assert ca.messages == pd.messages
        assert ca.words == pd.words

    def test_c_sqrt_p_matches_force_decomposition_bandwidth(self):
        n, p = 2048, 64
        ca = ca_allpairs_cost(n, p, 8)
        fd = force_decomposition_cost(n, p)
        assert ca.words == pytest.approx(fd.words)
        assert ca.messages == 1.0  # O(1) vs O(log p): CA is even better

    def test_invalid_c(self):
        with pytest.raises(ValueError):
            ca_allpairs_cost(10, 8, 3)

    def test_monotone_improvement_in_c(self):
        prev = ca_allpairs_cost(4096, 64, 1)
        for c in (2, 4, 8):
            cur = ca_allpairs_cost(4096, 64, c)
            assert cur.messages < prev.messages
            assert cur.words < prev.words
            prev = cur


class TestCACutoff:
    def test_section4b_costs(self):
        b = ca_cutoff_cost(n=1024, p=64, c=4, m=8)
        assert b.messages == pytest.approx(2.0)  # m/c
        assert b.words == pytest.approx(128.0)  # m n / p

    def test_equation7(self):
        assert interactions_per_particle(n=1024, p=64, c=4, m=8) == pytest.approx(512.0)

    def test_cheaper_than_allpairs_when_window_small(self):
        n, p, c = 4096, 64, 2
        T = p // c
        m_small = T // 8
        cut = ca_cutoff_cost(n, p, c, m_small)
        full = ca_allpairs_cost(n, p, c)
        assert cut.messages < full.messages
        assert cut.words < full.words

    def test_validation(self):
        with pytest.raises(ValueError):
            ca_cutoff_cost(10, 9, 2, 1)
        with pytest.raises(ValueError):
            ca_cutoff_cost(10, 8, 2, -1)


class TestCostOrdering:
    def test_paper_hierarchy_at_scale(self):
        """particle >> CA(c) >> lower bound ordering on paper-like sizes."""
        n, p = 196608, 24576
        pd = particle_decomposition_cost(n, p)
        for c in (2, 4, 8, 16):
            ca = ca_allpairs_cost(n, p, c)
            assert ca.words < pd.words
            assert ca.messages < pd.messages

    def test_log_factor_note(self):
        """Force decomposition keeps a log(p) latency the CA algorithm
        avoids at c = sqrt(p)."""
        n, p = 65536, 4096
        fd = force_decomposition_cost(n, p)
        ca = ca_allpairs_cost(n, p, 64)
        assert ca.messages < fd.messages
        assert fd.messages == pytest.approx(math.log2(p))

"""Optimality proofs (Sections III-B and IV-B) as executable checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory import check_allpairs, check_cutoff


def divisor_cs(p):
    return [c for c in range(1, int(p**0.5) + 1) if p % c == 0]


class TestAllPairsOptimality:
    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(64, 1_000_000),
        p=st.sampled_from([16, 64, 256, 1024, 6144, 24576]),
        c_idx=st.integers(0, 10),
    )
    def test_ratios_are_exactly_one(self, n, p, c_idx):
        """Substituting M = cn/p makes Equation 5 equal the bound exactly."""
        cs = divisor_cs(p)
        c = cs[c_idx % len(cs)]
        rep = check_allpairs(n, p, c)
        assert rep.latency_ratio == pytest.approx(1.0)
        assert rep.bandwidth_ratio == pytest.approx(1.0)
        assert rep.is_optimal

    def test_paper_configurations(self):
        for p, cs in [(6144, (1, 2, 4, 8, 16, 32)),
                      (24576, (1, 2, 4, 8, 16, 32, 64))]:
            for c in cs:
                assert check_allpairs(196608, p, c).is_optimal


class TestCutoffOptimality:
    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(64, 1_000_000),
        p=st.sampled_from([16, 64, 1024, 24576, 32768]),
        c_idx=st.integers(0, 10),
        m_frac=st.floats(0.05, 0.5),
    )
    def test_ratios_are_exactly_one(self, n, p, c_idx, m_frac):
        cs = divisor_cs(p)
        c = cs[c_idx % len(cs)]
        m = max(1.0, m_frac * p / c)
        rep = check_cutoff(n, p, c, m)
        assert rep.latency_ratio == pytest.approx(1.0)
        assert rep.bandwidth_ratio == pytest.approx(1.0)

    def test_paper_cutoff_configuration(self):
        # rc = L/4 -> m = T/4 team regions.
        p, c = 24576, 16
        m = (p // c) / 4
        assert check_cutoff(196608, p, c, m).is_optimal


class TestOptimalityReport:
    def test_is_optimal_threshold(self):
        from repro.theory import OptimalityReport

        assert OptimalityReport(1.0, 1.0).is_optimal
        assert OptimalityReport(8.0, 8.0).is_optimal
        assert not OptimalityReport(9.0, 1.0).is_optimal
        assert not OptimalityReport(1.0, 100.0).is_optimal

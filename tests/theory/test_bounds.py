"""Communication lower bounds (Equations 1-4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory import (
    cutoff_bounds,
    direct_bounds,
    general_bounds,
    memory_per_rank,
)


class TestGeneralBounds:
    def test_equation1_shape(self):
        b = general_bounds(F_per_proc=1000.0, M=10.0, H=100.0)
        assert b.messages == pytest.approx(10.0)
        assert b.words == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            general_bounds(-1, 1, 1)
        with pytest.raises(ValueError):
            general_bounds(1, 0, 1)
        with pytest.raises(ValueError):
            general_bounds(1, 1, 0)


class TestDirectBounds:
    def test_equation2_values(self):
        # n=100, p=4, M=50: S = n^2/(p M^2) = 1, W = n^2/(p M) = 50.
        b = direct_bounds(100, 4, 50.0)
        assert b.messages == pytest.approx(1.0)
        assert b.words == pytest.approx(50.0)

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(1, 10_000), p=st.integers(1, 1000),
           M=st.floats(1.0, 1e6))
    def test_lower_lower_bound(self, n, p, M):
        """The paper's key observation: more memory lowers the bound."""
        small = direct_bounds(n, p, M)
        big = direct_bounds(n, p, 2 * M)
        assert big.messages <= small.messages
        assert big.words <= small.words
        # Latency falls quadratically, bandwidth linearly.
        assert big.messages == pytest.approx(small.messages / 4)
        assert big.words == pytest.approx(small.words / 2)

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(1, 10_000), p=st.integers(1, 1000),
           M=st.floats(1.0, 1e6))
    def test_w_equals_s_times_m(self, n, p, M):
        b = direct_bounds(n, p, M)
        assert b.words == pytest.approx(b.messages * M)


class TestCutoffBounds:
    def test_equation3_reduces_to_direct_when_k_is_n(self):
        n, p, M = 500, 8, 100.0
        assert cutoff_bounds(n, n, p, M) == direct_bounds(n, p, M)

    def test_smaller_k_lower_bound(self):
        full = cutoff_bounds(1000, 1000, 10, 50.0)
        cut = cutoff_bounds(1000, 10, 10, 50.0)
        assert cut.messages < full.messages
        assert cut.words < full.words

    def test_k_validation(self):
        with pytest.raises(ValueError):
            cutoff_bounds(10, -1, 2, 1.0)


class TestMemoryPerRank:
    def test_equation4(self):
        assert memory_per_rank(1000, 10, 2) == pytest.approx(200.0)

    def test_c1_is_minimal(self):
        assert memory_per_rank(100, 10, 1) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            memory_per_rank(100, 10, 0)
        with pytest.raises(ValueError):
            memory_per_rank(100, 10, 11)

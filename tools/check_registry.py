#!/usr/bin/env python
"""Registry-completeness check (CI gate).

Every ``run_*`` entry point exported by :mod:`repro.core` must be a thin
shim over the algorithm registry — i.e. there must be a registered
algorithm whose name matches the stripped entry-point name — or be listed
in ``EXEMPT`` with a reason.  Conversely, every registered algorithm must
have a matching ``run_<name>`` shim, so the registry can't silently grow
entries the documented API doesn't expose.

Exit status 0 when both directions hold; 1 with a listing of every
violation otherwise.

Usage::

    PYTHONPATH=src python tools/check_registry.py
"""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running as a plain script from the repo root.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - import plumbing
    sys.path.insert(0, str(_SRC))

#: run_* entry points that are deliberately NOT registry algorithms.
EXEMPT = {
    "run_simulation": "multi-timestep driver, not a single-step algorithm",
    "run_simulation_virtual": "modeled twin of the multi-timestep driver",
}


def main() -> int:
    import repro.core as core
    from repro.core import list_algorithms

    runners = sorted(name for name in core.__all__ if name.startswith("run_"))
    registered = set(list_algorithms())
    problems: list[str] = []

    for runner in runners:
        name = runner[len("run_"):]
        if runner in EXEMPT:
            if name in registered:
                problems.append(
                    f"{runner} is EXEMPT ({EXEMPT[runner]}) but algorithm "
                    f"{name!r} is registered anyway — drop one"
                )
            continue
        if name not in registered:
            problems.append(
                f"{runner} exported by repro.core has no registered "
                f"algorithm {name!r} (register it or add an EXEMPT entry)"
            )

    shim_names = {r[len("run_"):] for r in runners}
    for name in sorted(registered):
        if name not in shim_names:
            problems.append(
                f"algorithm {name!r} is registered but repro.core exports "
                f"no run_{name} shim"
            )

    if problems:
        print("registry completeness check FAILED:", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1

    print(f"registry completeness OK: {len(registered)} algorithms, "
          f"{len(runners) - len(EXEMPT)} registered runners, "
          f"{len(EXEMPT)} exempt ({', '.join(sorted(EXEMPT))})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

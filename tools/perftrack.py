#!/usr/bin/env python
"""Pinned performance microbenches with a JSON trajectory.

Every PR that touches the simulation substrate runs this harness and
commits the resulting ``benchmarks/BENCH_<tag>.json`` so the repository
carries a performance *trajectory*: op/s of the discrete-event engine,
pair/s of the force kernel, and wall time of a small end-to-end simulation,
all at pinned configurations that never change between PRs (changing them
would break comparability — add a new bench instead).

Usage::

    PYTHONPATH=src python tools/perftrack.py --tag pr3
    PYTHONPATH=src python tools/perftrack.py --smoke --out smoke.json
    PYTHONPATH=src python tools/perftrack.py --tag pr3 \
        --baseline benchmarks/BENCH_pr2.json

``--tag NAME`` writes ``benchmarks/BENCH_NAME.json`` next to the committed
history (an explicit ``--out`` path wins over the tag-derived default).

With ``--baseline``, the output embeds the baseline numbers and a
``speedup`` entry per bench (baseline wall / current wall), and the process
exits non-zero if any bench regressed by more than ``--regress-tol``
(default: no hard gate, tolerance ``inf``).

The benches are deliberately host-performance benches: they measure how
fast *this Python process* turns around the simulated machine, which is
what caps the rank counts every experiment can reach (see
docs/performance.md).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import sys
import time
from pathlib import Path

# Allow running as a plain script from the repo root.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - import plumbing
    sys.path.insert(0, str(_SRC))

import numpy as np

SCHEMA_VERSION = 1

# ---------------------------------------------------------------------------
# Pinned bench definitions.  full-mode parameters are frozen; smoke mode
# shrinks them for CI turnaround but keeps the same code paths.
# ---------------------------------------------------------------------------


def bench_engine_ring(smoke: bool) -> dict:
    """Engine op throughput: a sendrecv ring (the shift-loop hot path)."""
    from repro.machines import GenericTorus
    from repro.simmpi import Engine

    p = 32 if smoke else 64
    rounds = 32 if smoke else 128
    machine = GenericTorus(nranks=p, cores_per_node=4)

    def program(comm):
        x = comm.rank
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        for _ in range(rounds):
            x = yield from comm.sendrecv(right, x, left)
        return x

    def run():
        return Engine(machine).run(program)

    result = run()  # warm-up + correctness
    assert result.results[0] == 0
    return {"runner": run, "ops": result.nops, "metric": "engine_ops_per_s"}


def bench_engine_collectives(smoke: bool) -> dict:
    """Engine throughput on tree collectives (bcast + allreduce + barrier)."""
    from repro.machines import GenericTorus
    from repro.simmpi import Engine

    p = 32 if smoke else 128
    rounds = 4 if smoke else 8
    machine = GenericTorus(nranks=p, cores_per_node=4)

    def program(comm):
        total = 0
        for _ in range(rounds):
            v = yield from comm.bcast(comm.rank * 3, root=0)
            total += yield from comm.allreduce(v + comm.rank, lambda a, b: a + b)
            yield from comm.barrier()
        return total

    def run():
        return Engine(machine).run(program)

    result = run()
    return {"runner": run, "ops": result.nops, "metric": "engine_ops_per_s"}


def bench_kernel_pairwise(smoke: bool) -> dict:
    """Force-kernel throughput: chunked target x source sweep (pairs/s)."""
    from repro.physics import ForceLaw, pairwise_forces

    nt, ns = (512, 512) if smoke else (4096, 2048)
    law = ForceLaw(rcut=0.3, box=1.0)
    rng = np.random.default_rng(42)
    t = rng.random((nt, 2))
    s = rng.random((ns, 2))
    tid = np.arange(nt, dtype=np.int64)
    sid = np.arange(ns, 2 * ns, dtype=np.int64)
    out = np.zeros((nt, 2))

    def run():
        out[:] = 0.0
        _, npairs = pairwise_forces(law, t, s, target_ids=tid, source_ids=sid,
                                    out=out)
        return npairs

    assert run() == nt * ns
    return {"runner": run, "ops": nt * ns, "metric": "pairs_per_s"}


def bench_simulate_e2e(smoke: bool) -> dict:
    """End-to-end multi-step simulation: p=256, c=4, real kernel.

    This is the acceptance bench: a real `run_simulation` through engine,
    collectives, CA step, kernel and integrator.  Smoke mode shrinks p.
    """
    from repro.core import SimulationConfig, allpairs_config, run_simulation
    from repro.machines import GenericTorus
    from repro.physics import ForceLaw
    from repro.physics.particles import ParticleSet

    p, c = (64, 4) if smoke else (256, 4)
    n = 256 if smoke else 1024
    nsteps = 1 if smoke else 2
    machine = GenericTorus(nranks=p, cores_per_node=4)
    cfg = allpairs_config(p, c)
    scfg = SimulationConfig(cfg=cfg, law=ForceLaw(), dt=1.0e-3, nsteps=nsteps,
                            box_length=1.0)
    particles = ParticleSet.uniform_random(n, 2, 1.0, max_speed=0.1, seed=7)
    from repro.core.decomposition import team_blocks_even

    blocks = team_blocks_even(particles, cfg.grid.nteams)

    def run():
        return run_simulation(machine, scfg, blocks)

    sim = run()
    checksum = float(np.abs(sim.forces).sum())
    assert np.isfinite(checksum)
    return {"runner": run, "ops": sim.run.nops * nsteps // nsteps,
            "metric": "engine_ops_per_s", "checksum": checksum}


BENCHES = {
    "engine_ring": bench_engine_ring,
    "engine_collectives": bench_engine_collectives,
    "kernel_pairwise": bench_kernel_pairwise,
    "simulate_e2e": bench_simulate_e2e,
}


# ---------------------------------------------------------------------------
# Measurement.
# ---------------------------------------------------------------------------


def _peak_rss_kb() -> int:
    """Process peak RSS in KiB (ru_maxrss is KiB on Linux)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - bytes on macOS
        rss //= 1024
    return int(rss)


def _isolate() -> None:
    """Reset cross-bench process state (pooled kernel scratch, garbage).

    The kernel bench leaves multi-MB pooled buffers alive; without a reset
    they inflate memory pressure for every bench that runs after it and the
    suite ordering leaks into the numbers.
    """
    import gc

    from repro.physics import clear_scratch

    clear_scratch()
    gc.collect()


def run_bench(name: str, smoke: bool, repeats: int) -> dict:
    _isolate()
    spec = BENCHES[name](smoke)
    runner = spec["runner"]
    walls = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        runner()
        walls.append(time.perf_counter() - t0)
    best = min(walls)
    entry = {
        "wall_s": best,
        "wall_s_all": walls,
        "ops": spec["ops"],
        "metric": spec["metric"],
        "rate": spec["ops"] / best if best > 0 else None,
        "peak_rss_kb": _peak_rss_kb(),
    }
    if "checksum" in spec:
        entry["checksum"] = spec["checksum"]
    return entry


def run_all(smoke: bool, repeats: int, names=None) -> dict:
    results = {}
    for name in names or BENCHES:
        results[name] = run_bench(name, smoke, repeats)
        sys.stderr.write(
            f"  {name:<20} {results[name]['wall_s']*1e3:9.2f} ms  "
            f"{results[name]['rate']:.3e} {results[name]['metric']}\n"
        )
    return {
        "schema": SCHEMA_VERSION,
        "mode": "smoke" if smoke else "full",
        "repeats": repeats,
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "benches": results,
    }


def attach_baseline(report: dict, baseline: dict) -> dict:
    """Embed baseline walls and per-bench speedups into ``report``."""
    speedups = {}
    for name, entry in report["benches"].items():
        base = baseline.get("benches", {}).get(name)
        if base is None:
            continue
        entry["baseline_wall_s"] = base["wall_s"]
        entry["baseline_rate"] = base.get("rate")
        entry["speedup"] = base["wall_s"] / entry["wall_s"]
        speedups[name] = entry["speedup"]
    report["baseline_mode"] = baseline.get("mode")
    report["speedups"] = speedups
    return report


def list_baselines(bench_dir: Path | None = None, out=None) -> int:
    """Print every committed ``benchmarks/BENCH_*.json`` baseline.

    One row per tagged report: tag, mode, repeats, then each bench's best
    wall time — the quick way to see which tags exist before picking a
    ``--baseline`` or documenting the trajectory.
    """
    out = out or sys.stdout
    bench_dir = bench_dir or (
        Path(__file__).resolve().parent.parent / "benchmarks")
    files = sorted(bench_dir.glob("BENCH_*.json"))
    if not files:
        print(f"no BENCH_*.json baselines under {bench_dir}", file=out)
        return 0
    print(f"{'tag':<12} {'mode':<6} {'reps':>4}  bench walls (ms)", file=out)
    for path in files:
        tag = path.stem[len("BENCH_"):]
        try:
            report = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            print(f"{tag:<12} UNREADABLE: {exc}", file=out)
            continue
        walls = "  ".join(
            f"{name}={entry['wall_s'] * 1e3:.2f}"
            for name, entry in sorted(report.get("benches", {}).items())
        )
        print(f"{tag:<12} {report.get('mode', '?'):<6} "
              f"{report.get('repeats', 0):>4}  {walls}", file=out)
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--list", action="store_true",
                    help="list the committed benchmarks/BENCH_*.json "
                         "baselines and exit")
    ap.add_argument("--out", type=Path, default=None,
                    help="write the JSON report here (overrides --tag)")
    ap.add_argument("--tag", default=None, metavar="NAME",
                    help="write benchmarks/BENCH_NAME.json (the committed "
                         "trajectory's home)")
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized parameters (not comparable with full runs)")
    ap.add_argument("--repeats", type=int, default=None,
                    help="timing repeats per bench (default 5, smoke 2)")
    ap.add_argument("--bench", action="append", choices=sorted(BENCHES),
                    help="run only these benches (repeatable)")
    ap.add_argument("--baseline", type=Path, default=None,
                    help="prior report to compare against (embeds speedups)")
    ap.add_argument("--regress-tol", type=float, default=float("inf"),
                    help="fail if any bench is slower than baseline by more "
                         "than this factor (e.g. 1.2 = 20%% slower)")
    args = ap.parse_args(argv)
    if args.list:
        return list_baselines()
    repeats = args.repeats or (2 if args.smoke else 5)
    if args.out is None and args.tag is not None:
        bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
        args.out = bench_dir / f"BENCH_{args.tag}.json"

    sys.stderr.write(f"perftrack: mode={'smoke' if args.smoke else 'full'} "
                     f"repeats={repeats}\n")
    report = run_all(args.smoke, repeats, args.bench)

    worst = 0.0
    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text())
        if baseline.get("mode") != report["mode"]:
            sys.stderr.write("perftrack: WARNING baseline mode "
                             f"{baseline.get('mode')!r} != {report['mode']!r}; "
                             "speedups are not comparable\n")
        attach_baseline(report, baseline)
        for name, s in report["speedups"].items():
            sys.stderr.write(f"  speedup {name:<20} {s:6.2f}x\n")
            worst = max(worst, 1.0 / s)

    text = json.dumps(report, indent=1, sort_keys=True)
    if args.out is not None:
        args.out.write_text(text + "\n")
        sys.stderr.write(f"perftrack: wrote {args.out}\n")
    else:
        print(text)

    if worst > args.regress_tol:
        sys.stderr.write(f"perftrack: REGRESSION {worst:.2f}x exceeds "
                         f"tolerance {args.regress_tol}\n")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Pinned performance microbenches with a JSON trajectory.

Every PR that touches the simulation substrate runs this harness and
commits the resulting ``benchmarks/BENCH_<tag>.json`` so the repository
carries a performance *trajectory*: op/s of the discrete-event engine,
pair/s of the force kernel, and wall time of a small end-to-end simulation,
all at pinned configurations that never change between PRs (changing them
would break comparability — add a new bench instead).

Usage::

    PYTHONPATH=src python tools/perftrack.py --tag pr3
    PYTHONPATH=src python tools/perftrack.py --smoke --out smoke.json
    PYTHONPATH=src python tools/perftrack.py --tag pr3 \
        --baseline benchmarks/BENCH_pr2.json
    PYTHONPATH=src python tools/perftrack.py --compare pr3 pr7 \
        --regress-tol 1.5

``--tag NAME`` writes ``benchmarks/BENCH_NAME.json`` next to the committed
history (an explicit ``--out`` path wins over the tag-derived default).

With ``--baseline``, the output embeds the baseline numbers and a
``speedup`` entry per bench (baseline wall / current wall), and the process
exits non-zero if any bench regressed by more than ``--regress-tol``
(default: no hard gate, tolerance ``inf``).

``--compare A B`` runs no benches: it loads two existing reports (each a
tag like ``pr3`` or a JSON path), prints the per-bench speedup of B over A
for every bench the two share, and exits non-zero when any shared bench is
slower in B by more than ``--regress-tol`` — the CI regression gate over
committed artifacts.

The benches are deliberately host-performance benches: they measure how
fast *this Python process* turns around the simulated machine, which is
what caps the rank counts every experiment can reach (see
docs/performance.md).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import sys
import time
from pathlib import Path

# Allow running as a plain script from the repo root.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - import plumbing
    sys.path.insert(0, str(_SRC))

import numpy as np

SCHEMA_VERSION = 1

# ---------------------------------------------------------------------------
# Pinned bench definitions.  full-mode parameters are frozen; smoke mode
# shrinks them for CI turnaround but keeps the same code paths.
# ---------------------------------------------------------------------------


def bench_engine_ring(smoke: bool) -> dict:
    """Engine op throughput: a sendrecv ring (the shift-loop hot path)."""
    from repro.machines import GenericTorus
    from repro.simmpi import Engine

    p = 32 if smoke else 64
    rounds = 32 if smoke else 128
    machine = GenericTorus(nranks=p, cores_per_node=4)

    def program(comm):
        x = comm.rank
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        for _ in range(rounds):
            x = yield from comm.sendrecv(right, x, left)
        return x

    def run():
        return Engine(machine).run(program)

    result = run()  # warm-up + correctness
    assert result.results[0] == 0
    return {"runner": run, "ops": result.nops, "metric": "engine_ops_per_s"}


def bench_engine_collectives(smoke: bool) -> dict:
    """Engine throughput on tree collectives (bcast + allreduce + barrier)."""
    from repro.machines import GenericTorus
    from repro.simmpi import Engine

    p = 32 if smoke else 128
    rounds = 4 if smoke else 8
    machine = GenericTorus(nranks=p, cores_per_node=4)

    def program(comm):
        total = 0
        for _ in range(rounds):
            v = yield from comm.bcast(comm.rank * 3, root=0)
            total += yield from comm.allreduce(v + comm.rank, lambda a, b: a + b)
            yield from comm.barrier()
        return total

    def run():
        return Engine(machine).run(program)

    result = run()
    return {"runner": run, "ops": result.nops, "metric": "engine_ops_per_s"}


def bench_kernel_pairwise(smoke: bool) -> dict:
    """Force-kernel throughput: chunked target x source sweep (pairs/s)."""
    from repro.physics import ForceLaw, pairwise_forces

    nt, ns = (512, 512) if smoke else (4096, 2048)
    law = ForceLaw(rcut=0.3, box=1.0)
    rng = np.random.default_rng(42)
    t = rng.random((nt, 2))
    s = rng.random((ns, 2))
    tid = np.arange(nt, dtype=np.int64)
    sid = np.arange(ns, 2 * ns, dtype=np.int64)
    out = np.zeros((nt, 2))

    def run():
        out[:] = 0.0
        _, npairs = pairwise_forces(law, t, s, target_ids=tid, source_ids=sid,
                                    out=out)
        return npairs

    assert run() == nt * ns
    return {"runner": run, "ops": nt * ns, "metric": "pairs_per_s"}


def bench_simulate_e2e(smoke: bool) -> dict:
    """End-to-end multi-step simulation: p=256, c=4, real kernel.

    This is the acceptance bench: a real `run_simulation` through engine,
    collectives, CA step, kernel and integrator.  Smoke mode shrinks p.
    """
    from repro.core import SimulationConfig, allpairs_config, run_simulation
    from repro.machines import GenericTorus
    from repro.physics import ForceLaw
    from repro.physics.particles import ParticleSet

    p, c = (64, 4) if smoke else (256, 4)
    n = 256 if smoke else 1024
    nsteps = 1 if smoke else 2
    machine = GenericTorus(nranks=p, cores_per_node=4)
    cfg = allpairs_config(p, c)
    scfg = SimulationConfig(cfg=cfg, law=ForceLaw(), dt=1.0e-3, nsteps=nsteps,
                            box_length=1.0)
    particles = ParticleSet.uniform_random(n, 2, 1.0, max_speed=0.1, seed=7)
    from repro.core.decomposition import team_blocks_even

    blocks = team_blocks_even(particles, cfg.grid.nteams)

    def run():
        return run_simulation(machine, scfg, blocks)

    sim = run()
    checksum = float(np.abs(sim.forces).sum())
    assert np.isfinite(checksum)
    return {"runner": run, "ops": sim.run.nops * nsteps // nsteps,
            "metric": "engine_ops_per_s", "checksum": checksum}


def bench_parallel_soak(smoke: bool) -> dict:
    """Parallel-executor throughput: a chaos-soak sweep, workers vs serial.

    Measures the serial sweep once in setup, times the ``workers=4``
    sweep as the bench, and records the speedup.  The trials are pure
    functions of ``(seed, index)`` so both runs do identical work.  On a
    single-core host the spawn overhead makes the parallel leg *slower*
    — the recorded ``env.cpu_count`` qualifies the speedup.
    """
    import tempfile

    from repro.experiments.soak import run_soak

    trials = 6 if smoke else 32
    workers = 2 if smoke else 4
    seed = 2026
    out_dir = tempfile.mkdtemp(prefix="perftrack-soak-")

    t0 = time.perf_counter()
    serial_report = run_soak(trials, seed=seed, out_dir=out_dir)
    serial_wall = time.perf_counter() - t0
    assert serial_report.ok

    def run():
        report = run_soak(trials, seed=seed, out_dir=out_dir,
                          workers=workers)
        assert report.ok
        return report

    def post(entry):
        entry["serial_wall_s"] = serial_wall
        entry["trials"] = trials
        entry["workers"] = workers
        entry["speedup_vs_serial"] = serial_wall / entry["wall_s"]

    return {"runner": run, "ops": trials, "metric": "trials_per_s",
            "repeats": 1, "post": post}


def bench_runcache_hit(smoke: bool) -> dict:
    """Warm-cache sweep turnaround: every point served, zero recomputes.

    A configuration sweep runs cold once in setup (engines execute,
    results stored into a fresh :class:`~repro.core.runcache.RunCache`),
    then the *same* sweep is timed warm — all cache hits, no engine
    work.  The recorded ``speedup_vs_cold`` is the cache's whole value
    proposition and the perf-guard test asserts it stays large; the
    bench's own wall is the cache-probe overhead per sweep.
    """
    import shutil
    import tempfile

    from repro.core.runcache import RunCache
    from repro.experiments.sweep import expand_grid, run_sweep

    ps = (8,) if smoke else (16,)
    ns = (32,) if smoke else (64, 128)
    seeds = (0,) if smoke else (0, 1)
    tasks, _ = expand_grid(["allpairs", "symmetric", "cutoff"],
                           ps=ps, cs=(1, 2), ns=ns, seeds=seeds, rcut=0.3)
    root = tempfile.mkdtemp(prefix="perftrack-runcache-")
    cache = RunCache(root)

    t0 = time.perf_counter()
    cold = run_sweep(tasks, cache=cache)
    cold_wall = time.perf_counter() - t0
    assert cold.ok and cache.stats.stores == len(tasks)

    def run():
        report = run_sweep(tasks, cache=cache)
        assert report.ok and not report.computed  # 100% served, 0 engines
        return report

    def post(entry):
        entry["cold_wall_s"] = cold_wall
        entry["tasks"] = len(tasks)
        entry["speedup_vs_cold"] = cold_wall / entry["wall_s"]
        shutil.rmtree(root, ignore_errors=True)

    return {"runner": run, "ops": len(tasks), "metric": "hits_per_s",
            "post": post}


def bench_heuristic_phase_advance(smoke: bool) -> dict:
    """Heuristic engine tier at scale: one CA all-pairs run at p = 10^4.

    The event simulator cannot reach this rank count in reasonable time;
    the vectorized phase-advance tier must finish in seconds — this bench
    is the committed evidence (plus the wall-time lock the perf-guard
    test asserts on).
    """
    from repro.core.runner import RunSpec, run as run_spec
    from repro.machines import GenericMachine

    p, n = (1000, 2000) if smoke else (10000, 20000)
    spec = RunSpec(machine=GenericMachine(nranks=p), algorithm="allpairs",
                   n=n, c=4, seed=0, engine_tier="heuristic")

    def run():
        return run_spec(spec)

    out = run()  # warm-up + sanity
    assert out.run.elapsed > 0 and len(out.run.clocks) == p

    def post(entry):
        entry["ranks"] = p
        entry["particles"] = n
        entry["virtual_elapsed_s"] = out.run.elapsed

    return {"runner": run, "ops": p, "metric": "ranks_per_s", "post": post}


BENCHES = {
    "engine_ring": bench_engine_ring,
    "engine_collectives": bench_engine_collectives,
    "kernel_pairwise": bench_kernel_pairwise,
    "simulate_e2e": bench_simulate_e2e,
    "parallel_soak": bench_parallel_soak,
    "runcache_hit": bench_runcache_hit,
    "heuristic_phase_advance": bench_heuristic_phase_advance,
}


# ---------------------------------------------------------------------------
# Measurement.
# ---------------------------------------------------------------------------


def _peak_rss_kb() -> int:
    """Process peak RSS in KiB (ru_maxrss is KiB on Linux)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - bytes on macOS
        rss //= 1024
    return int(rss)


def _isolate() -> None:
    """Reset cross-bench process state (pooled kernel scratch, garbage).

    The kernel bench leaves multi-MB pooled buffers alive; without a reset
    they inflate memory pressure for every bench that runs after it and the
    suite ordering leaks into the numbers.
    """
    import gc

    from repro.physics import clear_scratch

    clear_scratch()
    gc.collect()


def run_bench(name: str, smoke: bool, repeats: int) -> dict:
    _isolate()
    spec = BENCHES[name](smoke)
    runner = spec["runner"]
    walls = []
    for _ in range(spec.get("repeats", repeats)):
        t0 = time.perf_counter()
        runner()
        walls.append(time.perf_counter() - t0)
    best = min(walls)
    entry = {
        "wall_s": best,
        "wall_s_all": walls,
        "ops": spec["ops"],
        "metric": spec["metric"],
        "rate": spec["ops"] / best if best > 0 else None,
        "peak_rss_kb": _peak_rss_kb(),
    }
    if "checksum" in spec:
        entry["checksum"] = spec["checksum"]
    if "post" in spec:
        # Measure-style benches attach derived fields (serial walls,
        # speedups, rank counts) once the timing is in.
        spec["post"](entry)
    return entry


def run_all(smoke: bool, repeats: int, names=None) -> dict:
    results = {}
    for name in names or BENCHES:
        results[name] = run_bench(name, smoke, repeats)
        sys.stderr.write(
            f"  {name:<20} {results[name]['wall_s']*1e3:9.2f} ms  "
            f"{results[name]['rate']:.3e} {results[name]['metric']}\n"
        )
    return {
        "schema": SCHEMA_VERSION,
        "mode": "smoke" if smoke else "full",
        "repeats": repeats,
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "benches": results,
    }


def attach_baseline(report: dict, baseline: dict) -> dict:
    """Embed baseline walls and per-bench speedups into ``report``."""
    speedups = {}
    for name, entry in report["benches"].items():
        base = baseline.get("benches", {}).get(name)
        if base is None:
            continue
        entry["baseline_wall_s"] = base["wall_s"]
        entry["baseline_rate"] = base.get("rate")
        entry["speedup"] = base["wall_s"] / entry["wall_s"]
        speedups[name] = entry["speedup"]
    report["baseline_mode"] = baseline.get("mode")
    report["speedups"] = speedups
    return report


def _resolve_report(spec: str, bench_dir: Path | None = None) -> Path:
    """Map a ``--compare`` operand (tag or path) to a report file."""
    path = Path(spec)
    if path.exists():
        return path
    bench_dir = bench_dir or (
        Path(__file__).resolve().parent.parent / "benchmarks")
    tagged = bench_dir / f"BENCH_{spec}.json"
    if tagged.exists():
        return tagged
    raise FileNotFoundError(
        f"{spec!r} is neither a report path nor a committed tag "
        f"(looked for {tagged})")


def compare_reports(spec_a: str, spec_b: str,
                    regress_tol: float = float("inf"),
                    bench_dir: Path | None = None, out=None) -> int:
    """Print per-bench speedups of report B over report A; gate regressions.

    Each operand is a tag (``pr3``) or a JSON path.  Only benches present
    in *both* reports are compared — a new bench cannot regress against a
    baseline that never measured it, and a retired one stops mattering.
    Returns 1 when any shared bench is slower in B by more than
    ``regress_tol``, 2 when the reports share no benches at all.
    """
    out = out or sys.stdout
    path_a = _resolve_report(spec_a, bench_dir)
    path_b = _resolve_report(spec_b, bench_dir)
    rep_a = json.loads(path_a.read_text())
    rep_b = json.loads(path_b.read_text())
    if rep_a.get("mode") != rep_b.get("mode"):
        print(f"WARNING: comparing mode={rep_a.get('mode')!r} against "
              f"mode={rep_b.get('mode')!r}; walls are not comparable",
              file=out)
    benches_a = rep_a.get("benches", {})
    benches_b = rep_b.get("benches", {})
    shared = sorted(set(benches_a) & set(benches_b))
    if not shared:
        print(f"no shared benches between {path_a.name} and {path_b.name}",
              file=out)
        return 2
    print(f"{'bench':<24} {path_a.stem[len('BENCH_'):]:>12} "
          f"{path_b.stem[len('BENCH_'):]:>12} {'speedup':>8}", file=out)
    worst = 0.0
    for name in shared:
        wa = benches_a[name]["wall_s"]
        wb = benches_b[name]["wall_s"]
        speedup = wa / wb if wb > 0 else float("inf")
        worst = max(worst, wb / wa if wa > 0 else float("inf"))
        print(f"{name:<24} {wa * 1e3:>10.2f}ms {wb * 1e3:>10.2f}ms "
              f"{speedup:>7.2f}x", file=out)
    for name in sorted(set(benches_a) ^ set(benches_b)):
        where = spec_a if name in benches_a else spec_b
        print(f"{name:<24} only in {where}", file=out)
    if worst > regress_tol:
        print(f"REGRESSION: worst slowdown {worst:.2f}x exceeds tolerance "
              f"{regress_tol}", file=out)
        return 1
    return 0


def list_baselines(bench_dir: Path | None = None, out=None) -> int:
    """Print every committed ``benchmarks/BENCH_*.json`` baseline.

    One row per tagged report: tag, mode, repeats, then each bench's best
    wall time — the quick way to see which tags exist before picking a
    ``--baseline`` or documenting the trajectory.
    """
    out = out or sys.stdout
    bench_dir = bench_dir or (
        Path(__file__).resolve().parent.parent / "benchmarks")
    files = sorted(bench_dir.glob("BENCH_*.json"))
    if not files:
        print(f"no BENCH_*.json baselines under {bench_dir}", file=out)
        return 0
    print(f"{'tag':<12} {'mode':<6} {'reps':>4}  bench walls (ms)", file=out)
    for path in files:
        tag = path.stem[len("BENCH_"):]
        try:
            report = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            print(f"{tag:<12} UNREADABLE: {exc}", file=out)
            continue
        walls = "  ".join(
            f"{name}={entry['wall_s'] * 1e3:.2f}"
            for name, entry in sorted(report.get("benches", {}).items())
        )
        print(f"{tag:<12} {report.get('mode', '?'):<6} "
              f"{report.get('repeats', 0):>4}  {walls}", file=out)
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--list", action="store_true",
                    help="list the committed benchmarks/BENCH_*.json "
                         "baselines and exit")
    ap.add_argument("--out", type=Path, default=None,
                    help="write the JSON report here (overrides --tag)")
    ap.add_argument("--tag", default=None, metavar="NAME",
                    help="write benchmarks/BENCH_NAME.json (the committed "
                         "trajectory's home)")
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized parameters (not comparable with full runs)")
    ap.add_argument("--repeats", type=int, default=None,
                    help="timing repeats per bench (default 5, smoke 2)")
    ap.add_argument("--bench", action="append", choices=sorted(BENCHES),
                    help="run only these benches (repeatable)")
    ap.add_argument("--baseline", type=Path, default=None,
                    help="prior report to compare against (embeds speedups)")
    ap.add_argument("--regress-tol", type=float, default=float("inf"),
                    help="fail if any bench is slower than baseline by more "
                         "than this factor (e.g. 1.2 = 20%% slower)")
    ap.add_argument("--compare", nargs=2, metavar=("A", "B"), default=None,
                    help="compare two existing reports (tags or paths) "
                         "instead of running benches; exits non-zero when "
                         "B regressed past --regress-tol")
    args = ap.parse_args(argv)
    if args.list:
        return list_baselines()
    if args.compare is not None:
        return compare_reports(args.compare[0], args.compare[1],
                               args.regress_tol)
    repeats = args.repeats or (2 if args.smoke else 5)
    if args.out is None and args.tag is not None:
        bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
        args.out = bench_dir / f"BENCH_{args.tag}.json"

    sys.stderr.write(f"perftrack: mode={'smoke' if args.smoke else 'full'} "
                     f"repeats={repeats}\n")
    report = run_all(args.smoke, repeats, args.bench)

    worst = 0.0
    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text())
        if baseline.get("mode") != report["mode"]:
            sys.stderr.write("perftrack: WARNING baseline mode "
                             f"{baseline.get('mode')!r} != {report['mode']!r}; "
                             "speedups are not comparable\n")
        attach_baseline(report, baseline)
        for name, s in report["speedups"].items():
            sys.stderr.write(f"  speedup {name:<20} {s:6.2f}x\n")
            worst = max(worst, 1.0 / s)

    text = json.dumps(report, indent=1, sort_keys=True)
    if args.out is not None:
        args.out.write_text(text + "\n")
        sys.stderr.write(f"perftrack: wrote {args.out}\n")
    else:
        print(text)

    if worst > args.regress_tol:
        sys.stderr.write(f"perftrack: REGRESSION {worst:.2f}x exceeds "
                         f"tolerance {args.regress_tol}\n")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Service smoke gate: boot ``repro serve``, prove the dedup contract live.

CI's end-to-end check for :mod:`repro.service`.  Boots the service on an
ephemeral port (in-process, via :class:`ServiceThread`) over a durable
run cache and drives it through :class:`ServiceClient` — real HTTP, the
same path an external client takes:

1. **Cold pass** — submit a batch of sweep descriptors containing one
   deliberate in-batch duplicate; every unique point must compute
   exactly once and the duplicate must coalesce (zero extra compute,
   asserted via the ``service.jobs.*`` counters).
2. **Warm pass** — resubmit the identical batch to the same live
   service; *every* submission must be served without compute
   (``cached: true``), the ``computed`` counter must not move, and the
   durable cache's own stats must not move either (a served-from-memory
   duplicate never re-reads the store).
3. **Restart pass** — a fresh service over the same cache directory
   must serve the whole batch from the durable store with zero
   computation (``computed == 0``, 100% cache hit rate).
4. **Bitwise identity** — the full result record fetched cold, warm,
   coalesced, and after restart must be byte-identical, and equal to a
   direct in-process :func:`sweep_task` evaluation.

The rendered ``/dashboard`` HTML is written to ``--out-dir`` and
uploaded as a CI artifact.  Exit status is non-zero on any violation.

Usage::

    PYTHONPATH=src python tools/service_smoke.py --out-dir service-artifacts
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile


#: The smoke batch: three algorithms plus one in-batch duplicate.
BATCH = [
    {"algorithm": "allpairs", "p": 4, "c": 2, "n": 24},
    {"algorithm": "allpairs", "p": 4, "c": 2, "n": 24},  # duplicate
    {"algorithm": "symmetric", "p": 4, "n": 24},
    {"algorithm": "particle_ring", "p": 4, "n": 24},
]

UNIQUE = 3  # unique fingerprints in BATCH


def _check(ok: bool, message: str) -> bool:
    """Print a PASS/FAIL line; returns ``ok`` for accumulation."""
    print(f"  {'PASS' if ok else 'FAIL'}: {message}")
    return ok


def _counters(client) -> dict:
    """Unlabeled service counters keyed by short name."""
    snap = client.stats()["service"]
    return {name.rsplit(".", 1)[1]: snap[name] for name in snap}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default="service-artifacts",
                        metavar="DIR",
                        help="where the dashboard HTML artifact lands")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="durable cache directory "
                             "(default: a fresh temp dir)")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="per-job wait budget in seconds")
    args = parser.parse_args(argv)

    from repro.experiments.sweep import normalize_task, sweep_task
    from repro.service import ServiceClient, ServiceThread

    cache_dir = args.cache or os.path.join(
        tempfile.mkdtemp(prefix="repro-service-smoke-"), "cache")
    os.makedirs(args.out_dir, exist_ok=True)
    ok = True

    print("[1/4] cold pass: compute once per unique point, coalesce the "
          "duplicate")
    with ServiceThread(cache=cache_dir) as st:
        client = ServiceClient(st.base_url)
        entries = client.submit(BATCH)
        records: dict[str, dict] = {}
        for entry in entries:
            snap = client.wait(entry["id"], timeout=args.timeout)
            ok &= _check(snap["status"] == "done",
                         f"job {entry['id']} completed ({snap['status']})")
            records[entry["id"]] = client.record(entry["id"])["record"]
        cold = _counters(client)
        ok &= _check(cold["computed"] == UNIQUE,
                     f"computed == {UNIQUE} (got {cold['computed']})")
        ok &= _check(cold["coalesced"] == len(BATCH) - UNIQUE,
                     f"coalesced == {len(BATCH) - UNIQUE} "
                     f"(got {cold['coalesced']})")
        ok &= _check(cold["failed"] == 0, "no failures")

        print("[2/4] warm pass: identical batch served 100% without compute")
        store_before = client.stats()["cache"]
        warm_entries = client.submit(BATCH)
        ok &= _check(all(e["cached"] for e in warm_entries),
                     "every resubmission reported cached: true")
        warm = _counters(client)
        ok &= _check(warm["computed"] == cold["computed"],
                     "computed counter did not move")
        ok &= _check(warm["cache_hits"] == cold["cache_hits"] + len(BATCH),
                     f"+{len(BATCH)} cache hits")
        ok &= _check(client.stats()["cache"] == store_before,
                     "durable store not re-read for in-memory hits")
        for entry in warm_entries:
            served = client.record(entry["id"])["record"]
            ok &= _check(served == records[entry["id"]],
                         f"warm record {entry['id']} bitwise-identical")
        dashboard = client.dashboard()
        path = os.path.join(args.out_dir, "dashboard.html")
        with open(path, "w") as fh:
            fh.write(dashboard)
        ok &= _check("served without compute" in dashboard
                     and "<!doctype html>" in dashboard,
                     f"dashboard rendered -> {path}")

    print("[3/4] restart pass: fresh service, same cache, zero computation")
    with ServiceThread(cache=cache_dir) as st:
        client = ServiceClient(st.base_url)
        entries = client.submit(BATCH)
        ok &= _check(all(e["cached"] for e in entries),
                     "every submission served from the durable cache")
        restart = _counters(client)
        ok &= _check(restart["computed"] == 0, "computed == 0 after restart")
        stats = client.stats()["cache"]
        ok &= _check(stats["hits"] == UNIQUE and stats["misses"] == 0,
                     f"store accounting exact (hits={stats['hits']}, "
                     f"misses={stats['misses']})")
        for entry in entries:
            served = client.record(entry["id"])["record"]
            ok &= _check(served == records[entry["id"]],
                         f"restart record {entry['id']} bitwise-identical")

    print("[4/4] direct evaluation parity")
    from repro.experiments.sweep import task_fingerprint
    from repro.service import job_id

    for desc in BATCH[:1] + BATCH[2:]:
        direct = sweep_task(normalize_task(desc))
        jid = job_id(task_fingerprint(desc))
        ok &= _check(records[jid] == direct,
                     f"service record for {desc['algorithm']} == "
                     "in-process sweep_task")

    print("service smoke:", "OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

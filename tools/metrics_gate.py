#!/usr/bin/env python
"""Communication-volume lock + model validation (CI gate).

Two checks, both about keeping the paper's quantitative claims honest:

1. **Comm-volume lock** — every registered algorithm runs at a pinned
   configuration on *both* engine tiers (the exact event simulator and
   the vectorized heuristic tier, which promises identical traffic), and
   the measured per-rank maxima and run totals must equal
   ``benchmarks/METRICS_LOCK.json`` bit for bit on each.
   Any change to an algorithm's communication volume — intended or not —
   shows up as a diff here and must be re-recorded with ``--update``,
   making comm-volume changes reviewable instead of silent.  An algorithm
   registered but missing from the lock fails the gate, so the lock can't
   lag the registry.

2. **Model validation** — :func:`repro.metrics.validate.validate_models`
   sweeps (p, c, n) per algorithm and checks measured S (messages) and W
   (words) against the closed forms in :mod:`repro.theory` within
   constant-factor tolerance bands (see ``docs/observability.md``) —
   again on both engine tiers.

Usage::

    PYTHONPATH=src python tools/metrics_gate.py            # check (CI)
    PYTHONPATH=src python tools/metrics_gate.py --update   # re-record lock
    PYTHONPATH=src python tools/metrics_gate.py --skip-models

Exit status 0 when both checks hold; 1 otherwise with a full listing.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Allow running as a plain script from the repo root.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - import plumbing
    sys.path.insert(0, str(_SRC))

LOCK_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / \
    "METRICS_LOCK.json"

#: The pinned measurement configuration.  Frozen: changing it invalidates
#: every recorded volume at once (re-record with --update and explain in
#: the PR).  p=16 is square (force decomposition) and rcut=0.3 satisfies
#: the cutoff-windowed algorithms.
PINNED = {"p": 16, "n": 64, "c": 2, "rcut": 0.3, "seed": 0}

#: Extra pinned configurations beyond the one-size-fits-all PINNED run:
#: the d-dimensional cutoff window (Section IV-C) on a 2-D and a 3-D
#: team grid.  Locked on both engine tiers like the per-algorithm table.
EXTRA_CASES = {
    "cutoff_dim2": {"algorithm": "cutoff", "p": 16, "n": 64, "c": 2,
                    "rcut": 0.3, "dim": 2, "seed": 0},
    "cutoff_dim3": {"algorithm": "cutoff", "p": 27, "n": 81, "c": 1,
                    "rcut": 0.3, "dim": 3, "seed": 0},
}


def measure(name: str, engine_tier: str = "event") -> dict:
    """One algorithm's exact comm volume at the pinned configuration.

    Traffic is exact on *both* engine tiers — the heuristic tier promises
    the event simulator's message/byte counts to the bit, so the same
    lock gates both.
    """
    from repro.core.runner import RunSpec, get_algorithm, run
    from repro.machines import GenericMachine

    alg = get_algorithm(name)
    spec = RunSpec(
        machine=GenericMachine(nranks=PINNED["p"]),
        algorithm=name,
        n=PINNED["n"],
        c=PINNED["c"] if alg.supports_c else 1,
        rcut=PINNED["rcut"] if alg.needs_rcut else None,
        seed=PINNED["seed"],
        engine_tier=engine_tier,
    )
    return _volumes(run(spec).report)


def measure_case(case: dict, engine_tier: str = "event") -> dict:
    """One :data:`EXTRA_CASES` configuration's exact comm volume."""
    from repro.core.runner import RunSpec, run
    from repro.machines import GenericMachine

    spec = RunSpec(
        machine=GenericMachine(nranks=case["p"]),
        algorithm=case["algorithm"],
        n=case["n"],
        c=case["c"],
        rcut=case["rcut"],
        dim=case["dim"],
        seed=case["seed"],
        engine_tier=engine_tier,
    )
    return _volumes(run(spec).report)


def _volumes(report) -> dict:
    total_messages = 0
    total_bytes = 0
    for tr in report.traces:
        for tot in tr.phases.values():
            total_messages += tot.messages_sent
            total_bytes += tot.bytes_sent
    return {
        "critical_messages": int(report.critical_messages()),
        "critical_bytes": int(report.critical_bytes()),
        "total_messages": int(total_messages),
        "total_bytes": int(total_bytes),
    }


def measure_all(engine_tier: str = "event") -> dict:
    from repro.core.runner import list_algorithms

    return {name: measure(name, engine_tier) for name in list_algorithms()}


def check_lock(problems: list[str]) -> None:
    """Compare measured volumes against the committed lock, exactly."""
    if not LOCK_PATH.exists():
        problems.append(
            f"{LOCK_PATH.name} does not exist — record it with "
            "'python tools/metrics_gate.py --update'"
        )
        return
    lock = json.loads(LOCK_PATH.read_text())
    if lock.get("config") != PINNED:
        problems.append(
            f"lock config {lock.get('config')} != pinned {PINNED} — "
            "re-record with --update"
        )
        return
    locked = lock.get("algorithms", {})
    for engine_tier in ("event", "heuristic"):
        measured = measure_all(engine_tier)
        for name in sorted(set(locked) | set(measured)):
            if name not in locked:
                problems.append(
                    f"algorithm {name!r} is registered but has no locked "
                    "comm volume — record it with --update"
                )
                continue
            if name not in measured:
                problems.append(
                    f"lock entry {name!r} is no longer a registered "
                    "algorithm — drop it with --update"
                )
                continue
            for key, want in locked[name].items():
                got = measured[name].get(key)
                if got != want:
                    problems.append(
                        f"[{engine_tier}] {name}.{key}: measured {got}, "
                        f"locked {want} — comm volume changed; if intended, "
                        "re-record with --update"
                    )
        locked_extra = lock.get("extra_cases", {})
        for cname, case in EXTRA_CASES.items():
            entry = locked_extra.get(cname)
            if entry is None:
                problems.append(
                    f"extra case {cname!r} has no locked comm volume — "
                    "record it with --update")
                continue
            if entry.get("config") != case:
                problems.append(
                    f"extra case {cname!r} config changed (locked "
                    f"{entry.get('config')}, pinned {case}) — re-record "
                    "with --update")
                continue
            got_case = measure_case(case, engine_tier)
            for key, want in entry.get("volumes", {}).items():
                got = got_case.get(key)
                if got != want:
                    problems.append(
                        f"[{engine_tier}] extra case {cname}.{key}: "
                        f"measured {got}, locked {want} — comm volume "
                        "changed; if intended, re-record with --update")
        for cname in locked_extra:
            if cname not in EXTRA_CASES:
                problems.append(
                    f"locked extra case {cname!r} is no longer pinned — "
                    "drop it with --update")
        if not problems:
            print(f"comm-volume lock OK [{engine_tier} tier]: "
                  f"{len(measured)} algorithms + {len(EXTRA_CASES)} extra "
                  f"cases match {LOCK_PATH.name}")


def update_lock() -> None:
    measured = measure_all()
    extra = {name: {"config": case, "volumes": measure_case(case)}
             for name, case in EXTRA_CASES.items()}
    LOCK_PATH.parent.mkdir(exist_ok=True)
    LOCK_PATH.write_text(json.dumps(
        {"schema": 1, "config": PINNED, "algorithms": measured,
         "extra_cases": extra},
        indent=1, sort_keys=True,
    ) + "\n")
    print(f"recorded comm volumes of {len(measured)} algorithms and "
          f"{len(extra)} extra cases to {LOCK_PATH}")


def check_models(problems: list[str]) -> None:
    from repro.metrics.validate import validate_models

    for engine_tier in ("event", "heuristic"):
        report = validate_models(engine_tier=engine_tier)
        print(f"model validation [{engine_tier} tier]:")
        print(report.summary())
        if not report.ok:
            for cv in report.cases:
                for msg in cv.failures:
                    problems.append(
                        f"model {cv.case.name} [{engine_tier}]: {msg}")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--update", action="store_true",
                    help="re-record the comm-volume lock instead of checking")
    ap.add_argument("--skip-models", action="store_true",
                    help="only run the comm-volume lock check")
    args = ap.parse_args(argv)

    problems: list[str] = []
    if args.update:
        update_lock()
    else:
        check_lock(problems)
    if not args.skip_models:
        check_models(problems)

    if problems:
        print("metrics gate FAILED:", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

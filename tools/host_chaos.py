#!/usr/bin/env python
"""Host-level chaos gate: kill real workers, demand bitwise-identical results.

Where ``tools/chaos_soak.py`` injects faults into the *simulated* machine,
this gate injects them into the *host* executor: the ``REPRO_HOST_CHAOS``
hook (see ``repro.core.parallel``) SIGKILLs, hangs, or crashes worker
processes mid-task, deterministically in ``(seed, task index, attempt)``.
Three legs, each asserting the purity contract — a sweep's merged output
must not depend on how many times its workers died:

1. **Sweep parity** — a small configuration sweep runs serially (the
   reference), then again across ``--workers`` processes while chaos
   SIGKILLs workers mid-task; with retries the merged records must be
   bitwise identical to the serial reference.
2. **Soak parity** — the chaos-soak campaign (simulated faults +
   checkpoint/resume) runs serially, then under the same host chaos; the
   per-trial verdicts must agree exactly.
3. **Poison quarantine** — chaos set to kill *every* attempt makes every
   sweep task a poison task; the gate asserts they all land in the
   replayable quarantine artifact (uploaded by CI), then replays the
   artifact with chaos lifted and demands the recovered records match the
   serial reference bitwise.

Usage::

    PYTHONPATH=src python tools/host_chaos.py --out-dir chaos-artifacts

Exit status is non-zero on any parity break or quarantine miss.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import sys


def _digest(report) -> str:
    """Canonical digest of a sweep report's task records (order included)."""
    h = hashlib.sha256()
    for desc, outcome in zip(report.tasks, report.outcomes):
        h.update(repr(sorted(desc.items())).encode())
        v = outcome.value
        if v is None:
            h.update(b"<no value>")
            continue
        h.update(repr((v["fingerprint"], v["elapsed"],
                       v["critical_messages"], v["critical_bytes"],
                       v["forces_dtype"], v["forces_shape"],
                       v["ids_dtype"])).encode())
        h.update(v["forces"] or b"")
        h.update(v["ids"] or b"")
    return h.hexdigest()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--retry", type=int, default=3, metavar="K",
                        help="retries per task after the first attempt "
                             "(default 3)")
    parser.add_argument("--task-timeout", type=float, default=60.0,
                        metavar="SECONDS",
                        help="per-task hang timeout (default 60)")
    parser.add_argument("--chaos-p", type=float, default=0.5,
                        help="per-attempt worker-kill probability "
                             "(default 0.5)")
    parser.add_argument("--chaos-seed", type=int, default=11)
    parser.add_argument("--soak-trials", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0,
                        help="soak campaign seed")
    parser.add_argument("--out-dir", default="chaos-artifacts", metavar="DIR",
                        help="quarantine + failure artifacts land here "
                             "(CI uploads it; default chaos-artifacts)")
    parser.add_argument("--skip-soak", action="store_true",
                        help="run only the sweep-parity and poison legs")
    args = parser.parse_args(argv)

    from repro.core.parallel import HOST_CHAOS_ENV, RetryPolicy
    from repro.experiments.soak import run_soak
    from repro.experiments.sweep import expand_grid, run_sweep

    os.makedirs(args.out_dir, exist_ok=True)
    retry = RetryPolicy(max_attempts=args.retry + 1, base_delay=0.05)
    tasks, _skipped = expand_grid(
        ["allpairs", "symmetric"], ps=(8,), cs=(1, 2), ns=(24,), seeds=(0,))
    failures = 0
    saved = os.environ.get(HOST_CHAOS_ENV)

    def _chaos(spec: str | None) -> None:
        if spec is None:
            os.environ.pop(HOST_CHAOS_ENV, None)
        else:
            os.environ[HOST_CHAOS_ENV] = spec

    try:
        # Leg 1: sweep parity under worker SIGKILLs.
        _chaos(None)
        reference = run_sweep(tasks)
        want = _digest(reference)
        _chaos(f"p={args.chaos_p},seed={args.chaos_seed},mode=kill")
        chaotic = run_sweep(tasks, workers=args.workers, retry=retry,
                            task_timeout=args.task_timeout)
        got = _digest(chaotic)
        retried = sum(1 for o in chaotic.outcomes if o.attempts > 1)
        print(f"sweep parity: {len(tasks)} tasks, {retried} retried after "
              f"worker kills, digest {'MATCH' if got == want else 'MISMATCH'}")
        if got != want or not chaotic.ok:
            print(chaotic.summary(), file=sys.stderr)
            print(f"HOST CHAOS FAILED: sweep under worker kills diverged "
                  f"from serial reference ({got} != {want})", file=sys.stderr)
            failures += 1

        # Leg 2: soak parity — simulated faults *and* host chaos at once.
        if not args.skip_soak:
            _chaos(None)
            ref_soak = run_soak(trials=args.soak_trials, seed=args.seed,
                                out_dir=os.path.join(args.out_dir, "serial"))
            _chaos(f"p={args.chaos_p},seed={args.chaos_seed},mode=kill")
            chaos_soak = run_soak(
                trials=args.soak_trials, seed=args.seed,
                out_dir=os.path.join(args.out_dir, "chaos"),
                workers=args.workers, retry=retry,
                task_timeout=args.task_timeout)
            same = ref_soak.trials == chaos_soak.trials
            print(f"soak parity: {args.soak_trials} trials, verdicts "
                  f"{'MATCH' if same else 'MISMATCH'}")
            if not same or not chaos_soak.ok:
                print(chaos_soak.summary(), file=sys.stderr)
                print("HOST CHAOS FAILED: soak verdicts under worker kills "
                      "diverged from the serial campaign", file=sys.stderr)
                failures += 1

        # Leg 3: poison tasks -> quarantine -> replay clean.
        quarantine = os.path.join(args.out_dir, "quarantine.json")
        _chaos(f"p=1.0,seed={args.chaos_seed},mode=raise,attempts=9999")
        poisoned = run_sweep(tasks, workers=args.workers,
                             retry=RetryPolicy(max_attempts=2,
                                               base_delay=0.01),
                             quarantine=quarantine)
        n_quarantined = sum(1 for o in poisoned.outcomes if o.quarantined)
        print(f"poison leg: {n_quarantined}/{len(tasks)} tasks quarantined "
              f"-> {quarantine}")
        if n_quarantined != len(tasks) or not os.path.exists(quarantine):
            print("HOST CHAOS FAILED: poison tasks did not all reach the "
                  "quarantine artifact", file=sys.stderr)
            failures += 1
        else:
            from repro.experiments.sweep import replay_quarantine

            _chaos(None)
            replayed = replay_quarantine(quarantine)
            same = _digest(replayed) == want
            print(f"replay leg: quarantined tasks replayed clean, digest "
                  f"{'MATCH' if same else 'MISMATCH'}")
            if not same:
                print("HOST CHAOS FAILED: quarantine replay diverged from "
                      "the serial reference", file=sys.stderr)
                failures += 1
    finally:
        _chaos(saved)

    if failures:
        return 1
    print("host chaos gate: all legs passed (results independent of worker "
          "deaths, hangs and poison tasks)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

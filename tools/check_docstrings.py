#!/usr/bin/env python
"""Docstring-coverage lint over the ``repro`` package (CI gate).

Every module under ``src/repro`` must carry a module docstring, and every
*public* top-level definition — classes and functions whose names do not
start with ``_`` — must carry one too, as must public methods of public
classes.  The docs are part of the deliverable here (the paper's
algorithms are the documentation's subject), so coverage is enforced the
same way the tests are.

Deliberately out of scope: private names, dunder methods, nested
definitions, *trivial* methods (single-statement bodies — one-line
property accessors and delegating one-liners document themselves), and
anything listed in ``ALLOW`` (with a reason) — the allowlist is for
legacy shims and auto-generated plumbing whose docs live elsewhere, not
an escape hatch for new code.

Usage::

    PYTHONPATH=src python tools/check_docstrings.py
    PYTHONPATH=src python tools/check_docstrings.py --verbose

Exit status 0 on full coverage; 1 with a listing of every bare name.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
_PKG = _ROOT / "src" / "repro"

#: ``"relpath"`` (whole file) or ``"relpath::qualname"`` -> reason.
ALLOW: dict[str, str] = {
    "__main__.py": "python -m entry point; one delegating call",
}


def _allowed(rel: str, qualname: str | None = None) -> bool:
    key = rel if qualname is None else f"{rel}::{qualname}"
    return key in ALLOW or rel in ALLOW and qualname is None


def _has_doc(node: ast.AST) -> bool:
    return ast.get_docstring(node, clean=False) is not None


def _is_public_def(node: ast.AST) -> bool:
    return (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef))
            and not node.name.startswith("_"))


def _is_trivial_method(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """A single-statement body (ignoring a docstring if present)."""
    body = node.body
    if body and isinstance(body[0], ast.Expr) and isinstance(
            body[0].value, ast.Constant) and isinstance(
            body[0].value.value, str):
        body = body[1:]
    return len(body) <= 1


def check_file(path: Path, problems: list[str]) -> tuple[int, int]:
    """Lint one file; returns (documented, checked) counts."""
    rel = str(path.relative_to(_PKG))
    tree = ast.parse(path.read_text(), filename=str(path))
    checked = documented = 0

    def judge(node, qualname: str, what: str) -> None:
        nonlocal checked, documented
        if f"{rel}::{qualname}" in ALLOW:
            return
        checked += 1
        if _has_doc(node):
            documented += 1
        else:
            problems.append(f"{rel}: {what} {qualname!r} has no docstring")

    if rel not in ALLOW:
        checked += 1
        if _has_doc(tree):
            documented += 1
        else:
            problems.append(f"{rel}: module has no docstring")

    for node in tree.body:
        if not _is_public_def(node):
            continue
        if isinstance(node, ast.ClassDef):
            judge(node, node.name, "class")
            for sub in node.body:
                if (_is_public_def(sub)
                        and isinstance(sub, (ast.FunctionDef,
                                             ast.AsyncFunctionDef))
                        and not _is_trivial_method(sub)):
                    judge(sub, f"{node.name}.{sub.name}", "method")
        else:
            judge(node, node.name, "function")
    return documented, checked


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--verbose", action="store_true",
                    help="print per-file coverage even when clean")
    args = ap.parse_args(argv)

    problems: list[str] = []
    total_doc = total_checked = 0
    for path in sorted(_PKG.rglob("*.py")):
        documented, checked = check_file(path, problems)
        total_doc += documented
        total_checked += checked
        if args.verbose:
            rel = path.relative_to(_PKG)
            print(f"  {rel}: {documented}/{checked}")

    if problems:
        print("docstring coverage FAILED "
              f"({total_doc}/{total_checked} documented):", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    print(f"docstring coverage OK: {total_doc}/{total_checked} public names "
          f"documented across src/repro ({len(ALLOW)} allowlisted)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Chaos soak runner: randomized faults + checkpoint/restart campaigns.

A thin command-line wrapper over :func:`repro.experiments.soak.run_soak`
(also reachable as ``python -m repro soak``): every trial runs a randomized
multi-step simulation three ways — fault-free, under a randomized fault
schedule with mid-run checkpoints, and resumed from one of those
checkpoints — and demands the final positions, velocities and forces agree
**bitwise** with the fault-free reference.  Documented-unrecoverable
outcomes (deaths outside the recoverable window, exhausted retransmit
budgets) count as declared losses, not failures.

Usage::

    PYTHONPATH=src python tools/chaos_soak.py --trials 20 --seed 1
    PYTHONPATH=src python tools/chaos_soak.py --trials 200 \
        --time-budget 300 --out-dir soak-artifacts

Every trial is a pure function of ``(seed, trial index)``; a failing trial
prints the exact ``--seed``/``--first-trial`` pair that replays it alone.
Failure artifacts (trial config + recorded engine timeline as JSON) land in
``--out-dir``.  Exit status is non-zero on any failure.
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trials", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--first-trial", type=int, default=0, metavar="I",
                        help="start at trial index I (replay a failure)")
    parser.add_argument("--no-kills", action="store_true",
                        help="transient faults only (no rank kills)")
    parser.add_argument("--out-dir", default=None, metavar="DIR",
                        help="where failure artifacts go (default: temp dir)")
    parser.add_argument("--time-budget", type=float, default=None,
                        metavar="SECONDS", help="stop early after this much "
                        "wall time; remaining trials are marked skipped")
    parser.add_argument("--schedule", default=None, metavar="POLICY",
                        help="run the chaos/resume legs under a perturbed "
                        "engine schedule (fifo | random[:SEED] | "
                        "adversarial[:SEED]); the fault-free reference "
                        "stays FIFO, so bitwise agreement also proves "
                        "schedule independence")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="run trials across N worker processes "
                             "(0 = serial; the report is bitwise identical)")
    parser.add_argument("--retry", type=int, default=0, metavar="K",
                        help="retry crashed/hung/failed worker tasks up to "
                             "K more times (default 0)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="kill and retry any worker task still running "
                             "after this many seconds")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="durable run cache: clean trial verdicts from "
                             "identical earlier campaigns are served from "
                             "DIR instead of recomputed")
    args = parser.parse_args(argv)

    from repro.experiments.soak import run_soak

    retry = None
    if args.retry:
        from repro.core.parallel import RetryPolicy
        retry = RetryPolicy(max_attempts=args.retry + 1)

    report = run_soak(
        trials=args.trials,
        seed=args.seed,
        first_trial=args.first_trial,
        with_kills=not args.no_kills,
        out_dir=args.out_dir,
        time_budget=args.time_budget,
        schedule=args.schedule,
        workers=args.workers,
        retry=retry,
        task_timeout=args.task_timeout,
        cache=args.cache,
    )
    print(report.summary())
    if not report.ok:
        sched = "" if args.schedule is None else f" --schedule {args.schedule}"
        print(f"SOAK FAILED: rerun with --seed {args.seed} "
              f"--first-trial {report.failures[0].index} --trials 1{sched}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

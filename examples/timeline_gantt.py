"""Watching the algorithm breathe: timelines of a CA cutoff step.

Records every event of one interaction step (``Engine(record_events=
True)``) and renders an ASCII Gantt chart per rank.  The boundary teams'
idle stripes — waiting inside the rendezvous shifts while interior teams
compute — are the load imbalance Section IV-D of the paper discusses.

    python examples/timeline_gantt.py
"""

from repro.core import allpairs_config, cutoff_config, virtual_team_blocks
from repro.core.ca_step import ca_interaction_step
from repro.experiments import render_gantt
from repro.machines import GenericTorus
from repro.physics import VirtualKernel
from repro.simmpi import Engine, timeline_to_json


def record(cfg, kernel, n):
    blocks = virtual_team_blocks(n, cfg.grid.nteams)

    def program(comm):
        col = cfg.grid.col_of(comm.rank)
        lb = blocks[col] if cfg.grid.row_of(comm.rank) == 0 else None
        res = yield from ca_interaction_step(comm, cfg, kernel, lb)
        return res

    machine = GenericTorus(nranks=cfg.grid.p, cores_per_node=4)
    return Engine(machine, record_events=True).run(program)


def main() -> None:
    print("=== all-pairs step (p=16, c=2): uniform work, tight pipeline ===")
    res = record(allpairs_config(16, 2), VirtualKernel(), 2048)
    print(render_gantt(res, width=72))

    print("\n=== cutoff step (p=16, c=2, rc=L/4): boundary teams idle ===")
    cfg = cutoff_config(16, 2, rcut=0.25, box_length=1.0, dim=1)
    res = record(cfg, VirtualKernel(dim=1), 2048)
    print(render_gantt(res, width=72))

    events = res.events
    print(f"\n{len(events)} events recorded; first three as JSON:")
    print(timeline_to_json(events[:3]))


if __name__ == "__main__":
    main()

"""Replication-factor sweep at the paper's scale (Figure 2 workload).

Reproduces the paper's headline experiment — execution-time breakdown vs.
replication factor c for the all-pairs algorithm — on the modeled Hopper
(Cray XE-6, 24,576 cores, 196,608 particles) and Intrepid (BlueGene/P,
32,768 cores, 262,144 particles, including the c=1 tree-network and
torus-only baselines).

    python examples/replication_sweep.py
"""

from repro.experiments import FIG2, render_figure, run_figure


def main() -> None:
    for panel in ("2b", "2d"):
        res = run_figure(FIG2[panel])
        print(render_figure(res))
        comm = res.comm_series()
        ca_only = {k: v for k, v in comm.items() if "tree" not in k}
        best = min(ca_only, key=ca_only.get)
        print(f"communication-optimal replication factor: {best}")
        if "c=1 (no-tree)" in comm:
            reduction = 1.0 - ca_only[best] / comm["c=1 (no-tree)"]
            print(f"communication reduction vs naive torus run: "
                  f"{100 * reduction:.2f}%  (paper reports 99.5%)")
        print()


if __name__ == "__main__":
    main()

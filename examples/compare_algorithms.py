"""Every registered algorithm on one workload, side by side.

The algorithm registry (``repro.core.runner``) makes the paper's central
comparison a one-liner: run each applicable algorithm — the CA all-pairs
and cutoff algorithms, the symmetric variant, and the Section II
baselines — on the *same* particles and machine, and tabulate per-phase
times, critical-path message/byte counts (the paper's S and W terms),
and the max force deviation from the serial reference.

    python examples/compare_algorithms.py
"""

from repro.core import RunSpec, get_algorithm, list_algorithms, run
from repro.experiments import compare_algorithms, render_comparison
from repro.machines import GenericTorus
from repro.physics import ParticleSet


def main() -> None:
    machine = GenericTorus(nranks=16, cores_per_node=4)
    particles = ParticleSet.uniform_random(256, dim=2, box_length=1.0,
                                           max_speed=0.1, seed=2013)

    # The registry knows each algorithm's capabilities.
    print("registered algorithms:")
    for name in list_algorithms():
        alg = get_algorithm(name)
        kind = "functional" if alg.functional else "modeled"
        print(f"  {name:22s} {kind:10s} {alg.summary}")

    # One declarative spec runs any of them through the same pipeline.
    out = run(RunSpec(machine=machine, algorithm="symmetric",
                      particles=particles, c=2))
    print(f"\nsymmetric, c=2: simulated step time "
          f"{out.elapsed * 1e3:.4f} ms, "
          f"S={out.report.critical_messages()} messages on the "
          f"critical path")

    # ...and the comparison harness sweeps the whole registry.
    print(f"\n{machine.describe()}, n={len(particles)}, c=2, rcut=0.3\n")
    result = compare_algorithms(machine, particles, c=2, rcut=0.3)
    print(render_comparison(result))


if __name__ == "__main__":
    main()

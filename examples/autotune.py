"""Autotuning the replication factor at runtime (the paper's future work).

The conclusions leave open 'the question of how to select the replication
factor c, which ... can be autotuned at runtime by trying multiple
factors.'  This example does exactly that: it measures one modeled step
for every feasible c on two machine configurations — a communication-bound
one and a compute-bound one — and shows the tuner picking different
optima.

    python examples/autotune.py
"""

from repro.core import autotune_c
from repro.machines import GenericTorus, Hopper


def main() -> None:
    print("=== communication-bound: slow network, fast cores ===")
    machine = GenericTorus(nranks=256, cores_per_node=8, alpha=2e-5,
                           beta=2e-9, pair_time=2e-9)
    result = autotune_c(machine, n=8192)
    print(result.summary())
    print(f"-> chosen c = {result.best_c}\n")

    print("=== compute-bound: fast network, slow cores ===")
    machine = GenericTorus(nranks=256, cores_per_node=8, alpha=5e-7,
                           beta=1e-10, pair_time=5e-7)
    result = autotune_c(machine, n=8192)
    print(result.summary())
    print(f"-> chosen c = {result.best_c}\n")

    print("=== paper scale: Hopper, 24,576 cores, 196,608 particles ===")
    print("(analytic-model measurement per candidate)")
    from repro.model import allpairs_breakdown

    machine = Hopper(24576)
    result = autotune_c(
        machine, n=196608,
        candidates=[1, 2, 4, 8, 16, 32, 64],
        measure=lambda c: allpairs_breakdown(machine, 196608, c).meta["makespan"],
    )
    print(result.summary())
    print(f"-> chosen c = {result.best_c} "
          "(the paper found c=16 best on this configuration)")

    print("\n=== with a cutoff radius (r_c = L/4, 1-D decomposition) ===")
    machine = GenericTorus(nranks=256, cores_per_node=8, alpha=2e-5,
                           beta=2e-9, pair_time=2e-9)
    result = autotune_c(machine, n=8192, rcut=0.25, box_length=1.0, dim=1)
    print(result.summary())
    print(f"-> chosen c = {result.best_c}")


if __name__ == "__main__":
    main()

"""Tour of the reproduction's extensions beyond the paper.

Four short experiments:

1. **Symmetric forces** — the Newton's-third-law optimization the paper
   skipped, at the paper's Figure 2b scale (what-if analysis);
2. **Periodic boundaries** — the boundary load imbalance of the cutoff
   runs, and its disappearance under a periodic box;
3. **Velocity Verlet** — energy drift vs. the paper-style Euler loop;
4. **Weak scaling** — the strong-scaling story retold with constant
   per-core work.

    python examples/extensions_tour.py
"""

import numpy as np

from repro.core import (
    SimulationConfig,
    allpairs_config,
    run_cutoff_virtual,
    run_simulation,
    team_blocks_even,
)
from repro.machines import GenericTorus, Hopper
from repro.model import (
    allpairs_breakdown,
    allpairs_weak_scaling,
    symmetric_breakdown,
)
from repro.physics import (
    ForceLaw,
    ParticleSet,
    kinetic_energy,
    potential_energy,
)


def symmetric_what_if() -> None:
    print("=== 1. Exploiting force symmetry (Hopper, 24,576 cores, "
          "196,608 particles) ===")
    m = Hopper(24576)
    for c in (1, 16, 64):
        std = allpairs_breakdown(m, 196608, c)
        sym = symmetric_breakdown(m, 196608, c)
        print(f"  c={c:3d}: {std.total * 1e3:8.2f} ms -> "
              f"{sym.total * 1e3:8.2f} ms ({std.total / sym.total:.2f}x)")
    print("  (the paper: 'we do not apply optimizations to exploit the "
          "symmetry')\n")


def periodic_imbalance() -> None:
    print("=== 2. Boundary load imbalance, reflective vs periodic ===")
    m = Hopper(96, cores_per_node=12)
    for periodic in (False, True):
        run = run_cutoff_virtual(m, 9216, 1, rcut=0.25, box_length=1.0,
                                 dim=1, periodic=periodic)
        pairs = [r.npairs for r in run.results]
        label = "periodic  " if periodic else "reflective"
        print(f"  {label}: scans min={min(pairs)} max={max(pairs)} "
              f"(spread {max(pairs) - min(pairs)}), "
              f"max shift wait {run.report.max_time('shift') * 1e3:.3f} ms")
    print("  (the paper attributes its cutoff inefficiency to this "
          "boundary effect)\n")


def verlet_vs_euler() -> None:
    print("=== 3. Velocity Verlet vs symplectic Euler (energy drift) ===")
    law = ForceLaw(k=1e-5, softening=5e-3)
    ps = ParticleSet.uniform_random(96, 2, 1.0, max_speed=0.02, seed=1)
    cfg = allpairs_config(8, 2)
    for integ in ("euler", "verlet"):
        scfg = SimulationConfig(cfg=cfg, law=law, dt=8e-3, nsteps=50,
                                box_length=1.0, integrator=integ)
        out = run_simulation(GenericTorus(nranks=8, cores_per_node=2), scfg,
                             team_blocks_even(ps, cfg.grid.nteams))
        final = out.particles
        e0 = kinetic_energy(ps.vel) + potential_energy(law, ps.pos)
        e1 = kinetic_energy(final.vel) + potential_energy(law, final.pos)
        print(f"  {integ:7s}: relative energy drift over 50 steps = "
              f"{100 * abs(e1 - e0) / abs(e0):.4f}%")
    print()


def weak_scaling() -> None:
    print("=== 4. Weak scaling on Hopper (n grows as sqrt(p)) ===")
    series = allpairs_weak_scaling(lambda p: Hopper(p), 24576,
                                   [1536, 6144, 24576], [1, 4, 16])
    for c, pts in series.items():
        row = "  ".join(f"p={p}: {e:.3f}" for p, _, _, e in pts)
        print(f"  c={c:3d}: {row}")
    print("  (1.0 = perfect weak scaling; same collapse/recovery as Fig. 3)")


def main() -> None:
    symmetric_what_if()
    periodic_imbalance()
    verlet_vs_euler()
    weak_scaling()
    assert np.isfinite(1.0)  # keep numpy imported for doc parity


if __name__ == "__main__":
    main()

"""Strong-scaling study (Figures 3 and 7 workloads).

Prints relative-efficiency-vs-one-core tables for the all-pairs algorithm
on modeled Hopper and Intrepid at the paper's machine sizes, and for the
1-D cutoff variant — showing c=1 collapsing at scale while a good
replication factor stays near ideal.

    python examples/strong_scaling.py
"""

from repro.experiments import FIG3, FIG7, render_figure, run_figure


def main() -> None:
    for panel, figs in (("3a", FIG3), ("3b", FIG3), ("7a", FIG7)):
        res = run_figure(figs[panel])
        print(render_figure(res))
        biggest = figs[panel].machine_sizes[-1]
        by_c = {c: dict(s) for c, s in res.efficiency.items()}
        best_c = max(by_c, key=lambda c: by_c[c].get(biggest, 0.0))
        print(f"at {biggest} cores: best c={best_c} "
              f"(eff {by_c[best_c][biggest]:.3f}) vs c=1 "
              f"(eff {by_c[1][biggest]:.3f})\n")


if __name__ == "__main__":
    main()

"""Profile one CA run: metrics registry + a Perfetto-loadable trace.

Runs the CA all-pairs algorithm with a metrics registry attached and the
engine's event recorder on, then exports both observability artifacts:

* ``quickstart_profile.metrics.json`` — every counter/gauge/histogram the
  run populated (communication volume per phase, per-rank traffic
  distribution, kernel pair counts, virtual times);
* ``quickstart_profile.trace.json`` — the rank-by-rank timeline in the
  Chrome Trace Event Format.  Drag it into https://ui.perfetto.dev (or
  chrome://tracing) to see the bcast / shift / compute / reduce structure
  of the step, one track per simulated rank.

The ``python -m repro profile`` subcommand wraps this same flow; see
docs/observability.md for the metric schema and the model-validation
pass built on top of it.

    python examples/profile_run.py
"""

from repro.core import RunSpec, run
from repro.machines import GenericTorus
from repro.metrics import MetricsRegistry, write_chrome_trace
from repro.physics import ParticleSet


def main() -> None:
    machine = GenericTorus(nranks=16, cores_per_node=4)
    particles = ParticleSet.uniform_random(256, dim=2, box_length=1.0,
                                           seed=2013)

    metrics = MetricsRegistry()
    out = run(RunSpec(machine=machine, algorithm="allpairs",
                      particles=particles, c=4, metrics=metrics,
                      engine_opts={"record_events": True}))

    print(metrics.summary())

    with open("quickstart_profile.metrics.json", "w") as fh:
        fh.write(metrics.to_json())
    write_chrome_trace("quickstart_profile.trace.json", out.trace,
                       process_name="allpairs p=16 c=4 n=256")

    s = metrics.value("comm.max_messages", phase="shift")
    w = metrics.value("comm.words", phase="shift")
    print(f"\nshift phase: S = {s:.0f} messages/rank, "
          f"W = {w:.0f} particle-words total")
    print("wrote quickstart_profile.metrics.json and "
          "quickstart_profile.trace.json (load in https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()

"""A small molecular-dynamics run with a cutoff radius (Section IV).

Simulates 256 particles in a reflective 2-D box for 20 timesteps using the
CA cutoff algorithm (Algorithm 2 generalized to 2-D) on a simulated
16-core machine: every step computes forces through the windowed
shift schedule, integrates, reflects at the walls, and re-assigns
particles that crossed team-region boundaries.  Energy is tracked to show
the run stays physical; trajectories are verified against a serial
reference at the end.

    python examples/md_cutoff.py
"""

import numpy as np

from repro.core import (
    SimulationConfig,
    cutoff_config,
    run_simulation,
    team_blocks_spatial,
)
from repro.machines import GenericTorus
from repro.physics import (
    ForceLaw,
    ParticleSet,
    euler_step,
    kinetic_energy,
    potential_energy,
    reference_forces,
    reflect,
)

BOX = 1.0
RCUT = 0.3
DT = 1e-3
STEPS = 20


def serial(particles, law):
    ps = particles.copy()
    for _ in range(STEPS):
        f = reference_forces(law.with_rcut(RCUT), ps)
        euler_step(ps.pos, ps.vel, f, DT)
        reflect(ps.pos, ps.vel, BOX)
    return ps.sorted_by_id()


def main() -> None:
    law = ForceLaw(k=1e-5, softening=5e-3)
    particles = ParticleSet.uniform_random(256, dim=2, box_length=BOX,
                                           max_speed=0.05, seed=7)
    machine = GenericTorus(nranks=16, cores_per_node=4)

    cfg = cutoff_config(machine.nranks, c=2, rcut=RCUT, box_length=BOX, dim=2)
    print(f"teams: {cfg.geometry.team_dims} regions, window spans "
          f"m={cfg.geometry.spanned_cells(RCUT)} cells per axis, "
          f"{cfg.schedule.steps} shift steps per interaction")

    lawc = law.with_rcut(RCUT)
    e0 = kinetic_energy(particles.vel) + potential_energy(lawc, particles.pos)

    scfg = SimulationConfig(cfg=cfg, law=law, dt=DT, nsteps=STEPS,
                            box_length=BOX)
    out = run_simulation(machine, scfg, team_blocks_spatial(particles,
                                                            cfg.geometry))

    final = out.particles
    e1 = kinetic_energy(final.vel) + potential_energy(lawc, final.pos)
    print(f"\nenergy: start={e0:.6e}, end={e1:.6e} "
          f"(drift {100 * abs(e1 - e0) / e0:.3f}%)")

    ref = serial(particles, law)
    err = np.abs(final.pos - ref.pos).max()
    print(f"max position deviation vs serial reference: {err:.3e}")

    print(f"\nsimulated machine time for {STEPS} steps: "
          f"{out.run.elapsed * 1e3:.3f} ms")
    print("per-phase breakdown (max over ranks):")
    for line in out.report.summary().splitlines():
        print("  ", line)


if __name__ == "__main__":
    main()

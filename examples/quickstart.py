"""Quickstart: compute all-pairs forces with the CA algorithm.

Runs the communication-avoiding all-pairs N-body step (Algorithm 1 of the
paper) through the algorithm-registry pipeline on a simulated 16-core
machine, verifies the forces against the serial reference, and prints the
per-phase time/traffic breakdown the algorithm's analysis is about.

    python examples/quickstart.py
"""

import numpy as np

from repro.core import RunSpec, run
from repro.machines import GenericTorus
from repro.physics import ForceLaw, ParticleSet, reference_forces


def main() -> None:
    # The paper's test problem: particles in a box, repulsive 1/r^2 force.
    law = ForceLaw(k=1e-4, softening=1e-3)
    particles = ParticleSet.uniform_random(512, dim=2, box_length=1.0,
                                           max_speed=0.1, seed=2013)

    # A 16-core machine (4 nodes x 4 cores on a small torus).
    machine = GenericTorus(nranks=16, cores_per_node=4)
    print(machine.describe())

    # "allpairs" is one of the registered algorithms; swap the name for
    # any other (python -m repro algorithms lists them) — the spec and
    # the pipeline stay the same.
    for c in (1, 2, 4):
        out = run(RunSpec(machine=machine, algorithm="allpairs",
                          particles=particles, c=c, law=law))
        err = np.abs(out.forces - reference_forces(law, particles)).max()
        comm = sum(
            out.report.max_time(ph) for ph in ("bcast", "shift", "reduce")
        )
        print(f"\nreplication factor c={c}:")
        print(f"  max |force error| vs serial reference: {err:.3e}")
        print(f"  simulated time/step: {out.run.elapsed * 1e3:.4f} ms "
              f"(communication {comm * 1e3:.4f} ms)")
        print("  breakdown (max over ranks):")
        for line in out.report.summary().splitlines():
            print("   ", line)


if __name__ == "__main__":
    main()

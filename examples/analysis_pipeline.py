"""End-to-end MD analysis pipeline.

Runs a periodic-box cutoff simulation with the CA algorithm, records a
trajectory (real gather communication, charged to the ``sample`` phase),
checkpoints the final state to ``.npz``, and computes the standard MD
observables: kinetic temperature, mean-squared displacement, and the
radial distribution function.

    python examples/analysis_pipeline.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.analysis import (
    mean_squared_displacement,
    radial_distribution,
    temperature,
)
from repro.core import (
    SimulationConfig,
    cutoff_config,
    run_simulation,
    team_blocks_spatial,
)
from repro.machines import GenericTorus
from repro.physics import ForceLaw, ParticleSet, load_particles, save_particles

BOX, RCUT, DT, STEPS = 1.0, 0.25, 2e-3, 30


def main() -> None:
    law = ForceLaw(k=2e-5, softening=5e-3)
    particles = ParticleSet.uniform_random(256, dim=2, box_length=BOX,
                                           max_speed=0.1, seed=42)
    machine = GenericTorus(nranks=16, cores_per_node=4)
    cfg = cutoff_config(machine.nranks, c=2, rcut=RCUT, box_length=BOX,
                        dim=2, periodic=True)
    scfg = SimulationConfig(cfg=cfg, law=law, dt=DT, nsteps=STEPS,
                            box_length=BOX, periodic=True,
                            integrator="verlet")

    out = run_simulation(machine, scfg,
                         team_blocks_spatial(particles, cfg.geometry),
                         sample_every=5)
    traj = out.trajectory
    print(f"recorded {len(traj)} frames over {traj.times[-1] * 1e3:.1f} ms "
          f"of simulated physics; machine time "
          f"{out.run.elapsed * 1e3:.3f} ms "
          f"(sampling {out.report.max_time('sample') * 1e6:.1f} us)")

    # -- observables ------------------------------------------------------
    t0 = temperature(traj[0])
    t1 = temperature(traj[-1])
    print(f"kinetic temperature: {t0:.3e} -> {t1:.3e}")

    msd = mean_squared_displacement(traj, box=BOX)
    print("MSD(t): " + "  ".join(f"{t * 1e3:.0f}ms:{m:.2e}"
                                 for t, m in zip(traj.times, msd)))

    r, g = radial_distribution(out.particles, box_length=BOX, periodic=True,
                               rmax=0.3, nbins=12)
    print("g(r):")
    for ri, gi in zip(r, g):
        bar = "#" * int(round(20 * min(gi, 2.0)))
        print(f"  r={ri:.3f} | {gi:5.2f} {bar}")

    # -- checkpoint / restart ----------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "final.npz"
        save_particles(path, out.particles)
        back = load_particles(path)
        assert np.array_equal(back.pos, out.particles.pos)
        print(f"\ncheckpoint round-trip OK ({path.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
